package baselines

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/causaliot/causaliot/internal/timeseries"
)

// OCSVM is the one-class support vector machine baseline (§VI-C): it learns
// a boundary around the training system states (Schölkopf ν-OCSVM with an
// RBF kernel, dual solved by a simplified pairwise SMO) and classifies each
// runtime system state as inside (normal) or outside (anomalous).
type OCSVM struct {
	// Nu bounds the fraction of training outliers / support vectors.
	// Defaults to 0.05.
	Nu float64
	// Gamma is the RBF kernel width exp(-Gamma * ||x-y||²). Defaults to
	// 1/n for n devices.
	Gamma float64
	// MaxTrainingPoints subsamples the training states to keep the SMO
	// tractable. Defaults to 600.
	MaxTrainingPoints int
	// Iterations bounds the SMO sweeps. Defaults to 40.
	Iterations int
	// Seed makes the subsampling reproducible.
	Seed int64

	reg     *timeseries.Registry
	support [][]float64
	alpha   []float64
	rho     float64
	current timeseries.State
	fitted  bool
}

var _ Detector = (*OCSVM)(nil)

// NewOCSVM returns a one-class SVM detector with default hyperparameters.
func NewOCSVM() *OCSVM {
	return &OCSVM{Nu: 0.05, MaxTrainingPoints: 600, Iterations: 40, Seed: 1}
}

// Name implements Detector.
func (o *OCSVM) Name() string { return "ocsvm" }

func stateVector(s timeseries.State) []float64 {
	v := make([]float64, len(s))
	for i, x := range s {
		v[i] = float64(x)
	}
	return v
}

func (o *OCSVM) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-o.Gamma * d2)
}

// Fit implements Detector: it subsamples the training system states and
// solves the ν-OCSVM dual
//
//	min ½ αᵀKα   s.t.  0 ≤ αᵢ ≤ 1/(νl),  Σαᵢ = 1
//
// with pairwise coordinate updates that preserve the equality constraint.
func (o *OCSVM) Fit(train *timeseries.Series) error {
	if train.Len() < 2 {
		return errors.New("baselines: ocsvm needs at least 2 states")
	}
	o.reg = train.Registry
	if o.Gamma <= 0 {
		o.Gamma = 1 / float64(o.reg.Len())
	}
	if o.Nu <= 0 || o.Nu > 1 {
		return fmt.Errorf("baselines: ocsvm nu %v outside (0,1]", o.Nu)
	}

	rng := rand.New(rand.NewSource(o.Seed))
	points := make([][]float64, 0, train.Len())
	for j := 1; j <= train.Len(); j++ {
		points = append(points, stateVector(train.State(j)))
	}
	if o.MaxTrainingPoints > 0 && len(points) > o.MaxTrainingPoints {
		rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })
		points = points[:o.MaxTrainingPoints]
	}
	l := len(points)
	c := 1 / (o.Nu * float64(l))

	// Precompute the kernel matrix.
	k := make([][]float64, l)
	for i := range k {
		k[i] = make([]float64, l)
		for j := range k[i] {
			k[i][j] = o.kernel(points[i], points[j])
		}
	}

	// Feasible start: uniform alphas (respects both constraints since
	// 1/l <= 1/(ν l) for ν <= 1).
	alpha := make([]float64, l)
	for i := range alpha {
		alpha[i] = 1 / float64(l)
	}
	// g[i] = (K α)_i, maintained incrementally.
	g := make([]float64, l)
	for i := 0; i < l; i++ {
		var s float64
		for j := 0; j < l; j++ {
			s += alpha[j] * k[i][j]
		}
		g[i] = s
	}

	for sweep := 0; sweep < o.Iterations; sweep++ {
		changed := false
		for i := 0; i < l; i++ {
			j := rng.Intn(l)
			if j == i {
				continue
			}
			s := alpha[i] + alpha[j]
			eta := k[i][i] + k[j][j] - 2*k[i][j]
			if eta < 1e-12 {
				continue
			}
			// Minimize over alpha_i = a with alpha_j = s - a:
			// d/da [½ a²K_ii + ½(s-a)²K_jj + a(s-a)K_ij + a·r_i + (s-a)·r_j]
			// where r_x = g[x] - alpha_i K_xi - alpha_j K_xj.
			ri := g[i] - alpha[i]*k[i][i] - alpha[j]*k[i][j]
			rj := g[j] - alpha[i]*k[j][i] - alpha[j]*k[j][j]
			a := (s*(k[j][j]-k[i][j]) - (ri - rj)) / eta
			lo := math.Max(0, s-c)
			hi := math.Min(c, s)
			if a < lo {
				a = lo
			}
			if a > hi {
				a = hi
			}
			dI := a - alpha[i]
			if math.Abs(dI) < 1e-12 {
				continue
			}
			dJ := -dI
			alpha[i] = a
			alpha[j] = s - a
			for x := 0; x < l; x++ {
				g[x] += dI*k[x][i] + dJ*k[x][j]
			}
			changed = true
		}
		if !changed {
			break
		}
	}

	// Keep the support vectors and compute rho as the mean decision value
	// over on-margin vectors (0 < alpha < C).
	var support [][]float64
	var alphas []float64
	var rhoSum float64
	var rhoCount int
	for i := 0; i < l; i++ {
		if alpha[i] > 1e-10 {
			support = append(support, points[i])
			alphas = append(alphas, alpha[i])
		}
		if alpha[i] > 1e-8 && alpha[i] < c-1e-8 {
			rhoSum += g[i]
			rhoCount++
		}
	}
	if rhoCount == 0 {
		// Fall back to the mean over all support vectors.
		for i := 0; i < l; i++ {
			if alpha[i] > 1e-10 {
				rhoSum += g[i]
				rhoCount++
			}
		}
	}
	if rhoCount == 0 {
		return errors.New("baselines: ocsvm training degenerated (no support vectors)")
	}
	o.support = support
	o.alpha = alphas
	o.rho = rhoSum / float64(rhoCount)
	o.fitted = true
	return o.Reset(train.State(0))
}

// Decision returns f(x) = Σ αᵢ K(xᵢ, x) − ρ; negative values are outside
// the learned boundary.
func (o *OCSVM) Decision(s timeseries.State) (float64, error) {
	if !o.fitted {
		return 0, errors.New("baselines: ocsvm decision before fit")
	}
	x := stateVector(s)
	var f float64
	for i, sv := range o.support {
		f += o.alpha[i] * o.kernel(sv, x)
	}
	return f - o.rho, nil
}

// Reset implements Detector.
func (o *OCSVM) Reset(initial timeseries.State) error {
	if !o.fitted {
		return errors.New("baselines: ocsvm reset before fit")
	}
	if len(initial) != o.reg.Len() {
		return fmt.Errorf("baselines: initial state has %d devices, want %d", len(initial), o.reg.Len())
	}
	o.current = initial.Clone()
	return nil
}

// Process implements Detector: the event updates the tracked system state,
// and the resulting state is classified against the learned boundary.
func (o *OCSVM) Process(step timeseries.Step) (bool, error) {
	if !o.fitted {
		return false, errors.New("baselines: ocsvm process before fit")
	}
	if step.Device < 0 || step.Device >= o.reg.Len() {
		return false, fmt.Errorf("baselines: device index %d out of range", step.Device)
	}
	o.current[step.Device] = step.Value
	f, err := o.Decision(o.current)
	if err != nil {
		return false, err
	}
	return f < 0, nil
}
