# Tier-1 is the seed verification contract; vet and the race tier add
# static analysis and the race detector so every PR exercises the
# concurrent serving hub under -race; the chaos tier replays the seeded
# fault schedules (panics, injected errors, wedged processors, kill/resume)
# against the supervised hub. `make check` runs all of them.

GO ?= go

.PHONY: tier1 vet race chaos netchaos fleet-soak serve-smoke cluster-smoke fuzz check bench bench-smoke bench-detect bench-adapt bench-fleet bench-serve bench-cluster bench-paper serve-demo

tier1:
	$(GO) build ./... && $(GO) test ./...

# staticcheck is optional tooling: run it when installed, otherwise fall
# back to go vet's analyzers only (never fail the build over a missing
# binary).
vet:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipped" ; \
	fi

race:
	$(GO) test -race ./...

# Chaos tier: deterministic fault-schedule tests (internal/faults driving
# the supervised hub), the checkpoint kill/resume equivalence tests, the
# model-lifecycle swap/drift stress and soak tests, the fleet
# router/migration suite, and the wire-protocol server tests, all under the
# race detector.
chaos: fleet-soak serve-smoke cluster-smoke netchaos
	$(GO) test -race -run 'Chaos|Checkpoint|Quarantine|Wedged|Panic|CloseRace|Stress|SIGTERM|Adaptive|Soak|Fleet|Migrat|Router|Ring|Wire|Server|Session' \
		./internal/hub ./internal/faults ./internal/fleet ./internal/wire ./cmd/causaliot .

# Network-chaos tier: the seeded TCP fault proxy (internal/netchaos) driving
# wire sessions through kills, corruptions, trickles, flaps, and partitions.
# The root-level soaks are gated behind CAUSALIOT_NETCHAOS=1 so plain
# `go test ./...` (tier-1) keeps its wall-clock budget; this target sets the
# gate and runs them under -race, with the proxy's own unit tests.
netchaos:
	CAUSALIOT_NETCHAOS=1 $(GO) test -race -run 'TestNetchaos' -v .
	$(GO) test -race ./internal/netchaos

# Fleet rebalance soak: an N-shard fleet with a mid-stream shard add
# (rebalance) and an explicit live migration must land bit-identical to a
# single hub on the same trace — alarms, scores, checkpoint state — with
# zero dropped or duplicated events. Runs under -race.
fleet-soak:
	$(GO) test -race -run 'TestFleetRebalanceSoak' -v .

# Wire-serving smoke: boots the full TCP stack in-process (loadgen against
# a self-served fleet) and checks the end-to-end accounting — every frame
# accepted or NACKed, every alarm pushed or counted as dropped. Runs under
# -race.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke' -v ./cmd/loadgen

# Cluster smoke: the multi-process serving path under -race — the remote
# shard proxy/worker suite, the facade differential tests (cluster router
# vs single hub, byte-identical exports, the sentinel mapping table), and
# the serve -worker / -cluster CLI end-to-end run (two worker processes
# plus a router, SIGTERM shutdown).
cluster-smoke:
	$(GO) test -race -run 'TestCluster|TestWorker|TestProxy' -v . ./internal/cluster
	$(GO) test -race -run 'TestServeCluster' -v ./cmd/causaliot

# Short fuzz pass over the model and checkpoint deserializers (the
# error-never-panic contract); extend -fuzztime for a deeper run.
fuzz:
	$(GO) test -fuzz FuzzLoad -fuzztime 10s .
	$(GO) test -fuzz FuzzRestoreMonitor -fuzztime 10s .
	$(GO) test -fuzz FuzzRestoreLifecycle -fuzztime 10s .

# Bench bitrot smoke: compile and run every benchmark exactly once (no
# timing) so a refactor can't silently strand a benchmark that no longer
# builds or crashes on its first iteration.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

check: tier1 vet race chaos bench-smoke

# Mining/G² counting-kernel benchmarks; records the bit-vs-scalar baseline
# (ns/op, allocations, speedups) to BENCH_pc.json for the perf trajectory.
bench:
	$(GO) test -bench='^Benchmark(GSquare|Mine)$$' -benchmem -run='^$$' ./internal/stats ./internal/pc
	$(GO) run ./cmd/benchpc -out BENCH_pc.json

# Serving hot-path benchmarks; records the compiled-vs-reference detection
# throughput (events/sec, allocs/op, threshold parallel scaling) to
# BENCH_detect.json.
bench-detect:
	$(GO) run ./cmd/benchdetect -out BENCH_detect.json

# Model-lifecycle benchmarks; records the evidence-accumulator overhead
# (ns/op, allocs/op), drift-scan latency, and refit-vs-remine wall time to
# BENCH_adapt.json.
bench-adapt:
	$(GO) run ./cmd/benchadapt -out BENCH_adapt.json

# Sharded-serving benchmarks; records Submit throughput on a single hub
# vs. 2- and 4-shard fleets at constant total worker count, the route
# lookup cost, and live-migration wall time under load to BENCH_fleet.json.
bench-fleet:
	$(GO) run ./cmd/benchfleet -out BENCH_fleet.json

# Network-serving load benchmark; boots a sharded fleet behind the wire
# listener and drives it with many producer connections, recording events/sec
# and alarm push-back latency percentiles to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/loadgen -self-serve -conns 32 -shards 4 -events 20000 \
		-train-days 2 -days 1 -token bench -out BENCH_serve.json

# Cross-process serving benchmark: the same harness routed through two
# cluster shard workers over the shard control plane (full wire hops on
# both sides), with live migrations of a hot tenant running mid-load;
# records throughput and per-migration wall time to BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/loadgen -self-serve -cluster 2 -conns 32 -events 20000 \
		-train-days 2 -days 1 -token bench -migrations 8 -out BENCH_cluster.json

# Full paper-reproduction benchmark suite (tables, figures, ablations).
bench-paper:
	$(GO) test -bench=. -benchmem -run='^$$' ./

# End-to-end demo of the serve mode on simulated traffic.
serve-demo:
	$(GO) run ./cmd/causaliot simulate -days 3 -seed 1 -out /tmp/causaliot-train.csv
	$(GO) run ./cmd/causaliot simulate -days 1 -seed 2 -out /tmp/causaliot-stream.csv
	$(GO) run ./cmd/causaliot serve -train /tmp/causaliot-train.csv -stream /tmp/causaliot-stream.csv \
		-tenants 8 -workers 4 -kmax 2
