// Command experiments reproduces every table and figure of the paper's
// evaluation (§VI) on the simulated testbeds and prints paper-style rows.
//
// Usage:
//
//	experiments [-seed N] [-days N] [-testbed contextact|casas] [-only table1,table3,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/causaliot/causaliot/internal/experiments"
	"github.com/causaliot/causaliot/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation and injection seed")
	days := fs.Int("days", 14, "simulated days")
	testbed := fs.String("testbed", "contextact", "testbed: contextact or casas")
	only := fs.String("only", "", "comma-separated subset: table1,table2,table3,table4,table5,figure5")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tb *sim.Testbed
	switch *testbed {
	case "contextact":
		tb = sim.ContextActLike()
	case "casas":
		tb = sim.CASASLike()
	default:
		return fmt.Errorf("unknown testbed %q", *testbed)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	fmt.Printf("== CausalIoT experiment harness (testbed=%s seed=%d days=%d) ==\n\n", tb.Name, *seed, *days)

	if selected("table1") {
		printTable1(tb)
	}
	if selected("table2") {
		printTable2(tb)
	}

	needPipeline := selected("table3") || selected("table4") || selected("table5") || selected("figure5")
	if !needPipeline {
		return nil
	}

	start := time.Now()
	p, err := experiments.Setup(tb, experiments.Config{Seed: *seed, Days: *days})
	if err != nil {
		return err
	}
	fmt.Printf("pipeline: %d train / %d test events, tau=%d, %d CI tests, threshold=%.4f (%.1fs)\n\n",
		p.Train.Len(), p.Test.Len(), p.Tau, p.MineStats.Tests, p.Threshold, time.Since(start).Seconds())

	if selected("table3") {
		printTable3(p)
	}
	if selected("table4") {
		if err := printTable4(p); err != nil {
			return err
		}
	}
	if selected("figure5") {
		if err := printFigure5(p); err != nil {
			return err
		}
	}
	if selected("table5") {
		if err := printTable5(p); err != nil {
			return err
		}
	}
	return nil
}

func printTable1(tb *sim.Testbed) {
	fmt.Println("-- Table I: device inventory --")
	fmt.Printf("%-6s %-22s %s\n", "Abbr.", "Attribute", "# devices")
	for _, row := range tb.Inventory() {
		fmt.Printf("%-6s %-22s %d\n", row.Attribute.Abbrev, row.Attribute.Name, row.Count)
	}
	fmt.Println()
}

func printTable2(tb *sim.Testbed) {
	fmt.Println("-- Table II: installed automation rules --")
	if len(tb.Rules) == 0 {
		fmt.Println("(none)")
	}
	for _, r := range tb.Rules {
		fmt.Printf("%-4s %s  [%s=%d -> %s=%d]\n", r.ID, r.Description, r.TriggerDev, r.TriggerVal, r.ActionDev, r.ActionVal)
	}
	fmt.Println()
}

func printTable3(p *experiments.Pipeline) {
	fmt.Println("-- Table III / §VI-B: identified device interactions --")
	res := p.EvaluateMining()
	fmt.Printf("mined=%d  TP=%d FP=%d FN=%d  precision=%.3f recall=%.3f\n",
		res.Confusion.TP+res.Confusion.FP, res.Confusion.TP, res.Confusion.FP, res.Confusion.FN,
		res.Confusion.Precision(), res.Confusion.Recall())
	fmt.Printf("automation rules identified: %d of %d\n", res.RulesFound, len(p.Testbed.Rules))
	fmt.Printf("%-22s %s\n", "category", "identified")
	for _, cat := range []sim.Category{
		sim.CatUseAfterUse, sim.CatUseAfterMove, sim.CatMoveAfterUse, sim.CatMoveAfterMove,
		sim.CatPhysical, sim.CatAutomation, sim.CatAutocorrelation,
	} {
		fmt.Printf("%-22s %d\n", cat, res.ByCategory[cat])
	}
	fmt.Printf("false positives (%d): %v\n", len(res.FalsePairs), res.FalsePairs)
	fmt.Printf("missed (%d): %v\n\n", len(res.Missed), res.Missed)
}

func printTable4(p *experiments.Pipeline) error {
	fmt.Println("-- Table IV: contextual anomaly detection --")
	fmt.Printf("%-20s %9s %9s %9s %9s %9s\n", "case", "injected", "accuracy", "precision", "recall", "F1")
	for _, c := range experiments.AllContextualCases() {
		res, err := p.ContextualDetection(c, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %9d %9.3f %9.3f %9.3f %9.3f\n",
			c, res.Injected, res.Confusion.Accuracy(), res.Confusion.Precision(),
			res.Confusion.Recall(), res.Confusion.F1())
	}
	fmt.Println()
	return nil
}

func printFigure5(p *experiments.Pipeline) error {
	fmt.Println("-- Figure 5: baseline comparison (precision / recall) --")
	fmt.Printf("%-20s %12s %12s %12s %12s\n", "case", "causaliot", "markov", "ocsvm", "hawatcher")
	for _, c := range experiments.AllContextualCases() {
		results, err := p.BaselineComparison(c, 0)
		if err != nil {
			return err
		}
		cells := make(map[string]string, len(results))
		for _, r := range results {
			cells[r.Detector] = fmt.Sprintf("%.2f/%.2f", r.Confusion.Precision(), r.Confusion.Recall())
		}
		fmt.Printf("%-20s %12s %12s %12s %12s\n",
			c, cells["causaliot"], cells[fmt.Sprintf("markov-%d", p.Tau)], cells["ocsvm"], cells["hawatcher"])
	}
	fmt.Println()
	return nil
}

func printTable5(p *experiments.Pipeline) error {
	fmt.Println("-- Table V: collective anomaly detection --")
	fmt.Printf("%-24s %5s %7s %11s %11s %11s %11s\n",
		"case", "kmax", "chains", "avg length", "% detected", "% tracked", "avg det len")
	for _, c := range experiments.AllCollectiveCases() {
		for kmax := 2; kmax <= 4; kmax++ {
			res, err := p.CollectiveDetection(c, 0, kmax)
			if err != nil {
				return err
			}
			fmt.Printf("%-24s %5d %7d %11.3f %10.1f%% %10.1f%% %11.3f\n",
				c, kmax, res.Report.Chains, res.Report.AvgChainLength,
				100*res.Report.DetectedRate(), 100*res.Report.TrackedRate(),
				res.Report.AvgDetectionLength)
		}
	}
	fmt.Println()
	return nil
}
