package causaliot_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/causaliot/causaliot"
	"github.com/causaliot/causaliot/internal/event"
	"github.com/causaliot/causaliot/internal/sim"
)

// TestFleetRebalanceSoak is the sharded-serving acceptance test: a fleet of
// hub shards hosting many copies of a simulated home, with a shard added
// (and the fleet rebalanced) mid-stream plus one explicit live migration,
// must land bit-identical to a single unsharded hub on the same trace —
// same alarms with the same scores per home, the same final checkpoint
// state, and zero dropped or duplicated events.
func TestFleetRebalanceSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}

	tb := sim.ContextActLike()
	simA, err := sim.NewSimulator(tb, sim.Config{Seed: 21, Days: 6})
	if err != nil {
		t.Fatal(err)
	}
	rawTrain, err := simA.Run()
	if err != nil {
		t.Fatal(err)
	}
	toType := func(attr event.Attribute) causaliot.DeviceType {
		switch attr.Name {
		case event.Switch.Name:
			return causaliot.Switch
		case event.PresenceSensor.Name:
			return causaliot.Presence
		case event.ContactSensor.Name:
			return causaliot.Contact
		case event.Dimmer.Name:
			return causaliot.Dimmer
		case event.WaterMeter.Name:
			return causaliot.WaterMeter
		case event.PowerSensor.Name:
			return causaliot.Power
		default:
			return causaliot.Brightness
		}
	}
	var devices []causaliot.Device
	for _, d := range tb.Devices {
		devices = append(devices, causaliot.Device{Name: d.Name, Type: toType(d.Attribute), Location: d.Location})
	}
	convert := func(raw []event.Event) []causaliot.Event {
		out := make([]causaliot.Event, 0, len(raw))
		for _, e := range raw {
			out = append(out, causaliot.Event{Time: e.Timestamp, Device: e.Device, Value: e.Value})
		}
		return out
	}
	sys, err := causaliot.Train(devices, convert(rawTrain), causaliot.Config{Tau: 3, KMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	simB, err := sim.NewSimulator(sim.ContextActLike(), sim.Config{Seed: 33, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	rawStream, err := simB.Run()
	if err != nil {
		t.Fatal(err)
	}
	stream := convert(rawStream)
	if len(stream) < 300 {
		t.Fatalf("stream too small to soak: %d events", len(stream))
	}

	const homes = 8
	names := make([]string, homes)
	for i := range names {
		names[i] = fmt.Sprintf("home-%d", i)
	}

	type scored struct {
		Alarm *causaliot.Alarm
		Score float64
	}
	type result struct {
		alarms map[string][]scored
		states map[string][]byte
		models map[string][]byte
		stats  causaliot.HubStats
	}

	// serve replays the stream to every home concurrently through the given
	// host; disrupt (optional) runs once mid-stream, after roughly a third
	// of the total events have been processed.
	serve := func(host causaliot.Host, disrupt func()) result {
		r := result{
			alarms: make(map[string][]scored),
			states: make(map[string][]byte),
			models: make(map[string][]byte),
		}
		var mu sync.Mutex
		for _, name := range names {
			err := host.Register(name, sys, causaliot.TenantOptions{
				OnAlarm: func(tenant string, a *causaliot.Alarm, score float64) {
					mu.Lock()
					r.alarms[tenant] = append(r.alarms[tenant], scored{Alarm: a, Score: score})
					mu.Unlock()
				},
				OnError: func(string, causaliot.Event, error) {},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		var producers sync.WaitGroup
		for _, name := range names {
			producers.Add(1)
			go func(name string) {
				defer producers.Done()
				for _, e := range stream {
					if err := host.Submit(name, e); err != nil {
						t.Errorf("submit %s: %v", name, err)
						return
					}
				}
			}(name)
		}
		if disrupt != nil {
			third := uint64(homes * len(stream) / 3)
			deadline := time.Now().Add(60 * time.Second)
			for host.Stats().Total.Processed < third {
				if time.Now().After(deadline) {
					t.Fatal("fleet never reached a third of the stream")
				}
				time.Sleep(2 * time.Millisecond)
			}
			disrupt()
		}
		producers.Wait()
		want := uint64(homes * len(stream))
		deadline := time.Now().Add(60 * time.Second)
		for host.Stats().Total.Processed < want {
			if time.Now().After(deadline) {
				t.Fatalf("host stalled at %d/%d processed", host.Stats().Total.Processed, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Final checkpoint state, exported at the same quiesced boundary in
		// both runs.
		for _, name := range names {
			var model, state bytes.Buffer
			if err := host.Export(name, causaliot.ExportOptions{Model: &model, State: &state}); err != nil {
				t.Fatal(err)
			}
			r.models[name] = model.Bytes()
			r.states[name] = state.Bytes()
		}
		r.stats = host.Stats()
		if err := host.Close(); err != nil {
			t.Fatal(err)
		}
		return r
	}

	fleet := causaliot.NewFleet(causaliot.FleetConfig{
		Shards: 3,
		Hub:    causaliot.HubConfig{Workers: 2, QueueSize: 1024},
	})
	sharded := serve(fleet, func() {
		// Mid-stream: grow the fleet (rebalancing ~1/4 of the homes onto
		// the new shard) and explicitly live-migrate one more home.
		if _, err := fleet.AddShard(); err != nil {
			t.Fatalf("mid-stream add shard: %v", err)
		}
		from, err := fleet.ShardOf(names[0])
		if err != nil {
			t.Fatal(err)
		}
		var to int
		for _, id := range fleet.Shards() {
			if id != from {
				to = id
				break
			}
		}
		if err := fleet.Migrate(names[0], to); err != nil {
			t.Fatalf("mid-stream migrate: %v", err)
		}
	})
	if migs, _, _ := func() (uint64, uint64, uint64) {
		fs := fleet.FleetStats()
		return fs.Migrations, fs.Replayed, fs.GapDropped
	}(); migs == 0 {
		t.Fatal("soak performed no live migration")
	}

	baseline := serve(causaliot.NewHub(causaliot.HubConfig{Workers: 2, QueueSize: 1024}), nil)

	// Zero loss, zero duplication — on both topologies.
	want := uint64(homes * len(stream))
	for topo, r := range map[string]result{"fleet": sharded, "hub": baseline} {
		s := r.stats.Total
		if s.Dropped != 0 || s.Shed != 0 {
			t.Fatalf("%s dropped events: %+v", topo, s)
		}
		if s.Processed != want {
			t.Fatalf("%s processed %d, want %d (lost or duplicated events)", topo, s.Processed, want)
		}
	}

	// Bit-identical alarms, scores, and final checkpoint state per home.
	totalAlarms := 0
	for _, name := range names {
		fa, ba := sharded.alarms[name], baseline.alarms[name]
		if len(fa) != len(ba) {
			t.Fatalf("%s: fleet raised %d alarms, hub %d", name, len(fa), len(ba))
		}
		totalAlarms += len(fa)
		for i := range fa {
			if fa[i].Score != ba[i].Score {
				t.Fatalf("%s alarm %d: fleet score %v, hub score %v", name, i, fa[i].Score, ba[i].Score)
			}
			if !reflect.DeepEqual(fa[i].Alarm, ba[i].Alarm) {
				t.Fatalf("%s alarm %d diverges:\nfleet: %s\nhub:   %s",
					name, i, fa[i].Alarm.Explain(), ba[i].Alarm.Explain())
			}
		}
		if !bytes.Equal(sharded.states[name], baseline.states[name]) {
			t.Fatalf("%s: final checkpoint state diverges between fleet and hub", name)
		}
		if !bytes.Equal(sharded.models[name], baseline.models[name]) {
			t.Fatalf("%s: served model diverges between fleet and hub", name)
		}
	}
	if totalAlarms == 0 {
		t.Log("soak produced no alarms; divergence check is weaker than intended")
	}
}
