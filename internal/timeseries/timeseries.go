// Package timeseries implements the temporal machinery of paper §III: the
// device registry, system states S^j derived from a sequence of device
// events, the resulting IoT time series (S^0, ..., S^m), graph snapshots
// G^j = (S^{j-τ}, ..., S^j), and the lagged-column views the TemporalPC
// conditional-independence tests operate on.
package timeseries

import (
	"errors"
	"fmt"
	"time"
)

// Registry assigns a stable contiguous index to every device name.
type Registry struct {
	names []string
	index map[string]int
}

// NewRegistry builds a registry over the given device names, in order.
// Duplicate names are rejected.
func NewRegistry(names []string) (*Registry, error) {
	r := &Registry{
		names: make([]string, len(names)),
		index: make(map[string]int, len(names)),
	}
	copy(r.names, names)
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("timeseries: empty device name at index %d", i)
		}
		if _, dup := r.index[name]; dup {
			return nil, fmt.Errorf("timeseries: duplicate device name %q", name)
		}
		r.index[name] = i
	}
	return r, nil
}

// Len returns the number of registered devices.
func (r *Registry) Len() int { return len(r.names) }

// Index returns the index of the named device.
func (r *Registry) Index(name string) (int, bool) {
	i, ok := r.index[name]
	return i, ok
}

// Name returns the device name at index i.
func (r *Registry) Name(i int) string { return r.names[i] }

// Names returns a copy of all device names in index order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Same reports whether two registries assign identical indices to identical
// device names (structural equality, not pointer identity).
func (r *Registry) Same(other *Registry) bool {
	if r == other {
		return true
	}
	if other == nil || len(r.names) != len(other.names) {
		return false
	}
	for i, name := range r.names {
		if other.names[i] != name {
			return false
		}
	}
	return true
}

// State is a full system state: State[i] is the binary state of device i.
type State []int

// Clone returns a deep copy of the state.
func (s State) Clone() State {
	out := make(State, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two states are identical.
func (s State) Equal(other State) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Step is a preprocessed device event e^j: device Device reported binary
// state Value at the step's position in the series.
type Step struct {
	// Device is the registry index of the reporting device.
	Device int
	// Value is the reported binary state (0 or 1).
	Value int
	// Time is the wall-clock timestamp of the underlying event; it is
	// carried for reporting and is not used by the mining algorithm.
	Time time.Time
}

// Series is the IoT time series (S^0, ..., S^m) together with the events
// that produced each transition: Steps[j-1] produced States[j].
type Series struct {
	Registry *Registry
	States   []State
	Steps    []Step
}

// Errors returned by series construction.
var (
	ErrNoRegistry   = errors.New("timeseries: nil registry")
	ErrInitialShape = errors.New("timeseries: initial state length does not match registry")
)

// FromSteps derives the system state at each timestamp from an initial state
// and a sequence of steps (paper §III): S^j equals S^{j-1} except at the
// reporting device's position.
func FromSteps(reg *Registry, initial State, steps []Step) (*Series, error) {
	if reg == nil {
		return nil, ErrNoRegistry
	}
	if len(initial) != reg.Len() {
		return nil, ErrInitialShape
	}
	states := make([]State, 0, len(steps)+1)
	states = append(states, initial.Clone())
	cur := initial.Clone()
	for j, st := range steps {
		if st.Device < 0 || st.Device >= reg.Len() {
			return nil, fmt.Errorf("timeseries: step %d device index %d out of range", j, st.Device)
		}
		if st.Value != 0 && st.Value != 1 {
			return nil, fmt.Errorf("timeseries: step %d value %d is not binary", j, st.Value)
		}
		cur = cur.Clone()
		cur[st.Device] = st.Value
		states = append(states, cur)
	}
	stepsCopy := make([]Step, len(steps))
	copy(stepsCopy, steps)
	return &Series{Registry: reg, States: states, Steps: stepsCopy}, nil
}

// Len returns the number of events m in the series (one fewer than the
// number of states).
func (s *Series) Len() int { return len(s.Steps) }

// NumDevices returns the number of devices n.
func (s *Series) NumDevices() int { return s.Registry.Len() }

// State returns the system state S^j. Index 0 is the initial state.
func (s *Series) State(j int) State { return s.States[j] }

// SnapshotCount returns how many snapshots exist for maximum lag tau:
// anchors j range over {tau, ..., m}.
func (s *Series) SnapshotCount(tau int) int {
	if n := s.Len() - tau + 1; n > 0 {
		return n
	}
	return 0
}

// LaggedColumn returns the values of device dev at the given lag across all
// snapshot anchors j ∈ {tau, ..., m}; element i corresponds to anchor
// j = tau+i and holds S_dev^{j-lag}. lag must lie in [0, tau].
func (s *Series) LaggedColumn(dev, lag, tau int) ([]int, error) {
	if dev < 0 || dev >= s.NumDevices() {
		return nil, fmt.Errorf("timeseries: device index %d out of range", dev)
	}
	if lag < 0 || lag > tau {
		return nil, fmt.Errorf("timeseries: lag %d outside [0,%d]", lag, tau)
	}
	count := s.SnapshotCount(tau)
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = s.States[tau+i-lag][dev]
	}
	return out, nil
}

// StepColumn returns, for each snapshot anchor j ∈ {tau, ..., m} with j >= 1,
// whether the event e^j was reported by device dev (1) or not (0), and the
// reported value. It is used by CPT estimation to condition on the device
// that actually reported at the anchor.
func (s *Series) StepAt(j int) (Step, error) {
	if j < 1 || j > s.Len() {
		return Step{}, fmt.Errorf("timeseries: step index %d outside [1,%d]", j, s.Len())
	}
	return s.Steps[j-1], nil
}

// Split divides the series into a training prefix containing frac of the
// events and a testing suffix containing the remainder. The testing series
// starts from the system state at the split point, so no information is
// lost at the boundary.
func (s *Series) Split(frac float64) (train, test *Series, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("timeseries: split fraction %v outside (0,1)", frac)
	}
	cut := int(float64(s.Len()) * frac)
	if cut < 1 || cut >= s.Len() {
		return nil, nil, fmt.Errorf("timeseries: split of %d events at fraction %v is degenerate", s.Len(), frac)
	}
	train, err = FromSteps(s.Registry, s.States[0], s.Steps[:cut])
	if err != nil {
		return nil, nil, err
	}
	test, err = FromSteps(s.Registry, s.States[cut], s.Steps[cut:])
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
