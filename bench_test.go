// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), plus ablations for the design decisions documented in DESIGN.md
// and microbenchmarks for the hot paths. Each table/figure bench reports
// the reproduced quality metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
//
// The shared pipeline runs on a shortened (5-day) simulation so the full
// bench suite stays in the minutes range; cmd/experiments uses the longer
// default for the headline numbers recorded in EXPERIMENTS.md.
package causaliot_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/causaliot/causaliot"
	"github.com/causaliot/causaliot/internal/automation"
	"github.com/causaliot/causaliot/internal/dig"
	"github.com/causaliot/causaliot/internal/experiments"
	"github.com/causaliot/causaliot/internal/inject"
	"github.com/causaliot/causaliot/internal/monitor"
	"github.com/causaliot/causaliot/internal/pc"
	"github.com/causaliot/causaliot/internal/preprocess"
	"github.com/causaliot/causaliot/internal/sim"
	"github.com/causaliot/causaliot/internal/stats"
	"github.com/causaliot/causaliot/internal/timeseries"
)

const benchDays = 5

var (
	pipeOnce sync.Once
	pipe     *experiments.Pipeline
	pipeErr  error
)

func sharedPipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = experiments.Setup(nil, experiments.Config{Seed: 1, Days: benchDays})
	})
	if pipeErr != nil {
		b.Fatal(pipeErr)
	}
	return pipe
}

// BenchmarkTable1DeviceInventory regenerates Table I.
func BenchmarkTable1DeviceInventory(b *testing.B) {
	tb := sim.ContextActLike()
	for i := 0; i < b.N; i++ {
		if rows := tb.Inventory(); len(rows) != 7 {
			b.Fatalf("inventory rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2RuleGeneration regenerates Table II: rule validation and
// chain analysis over the installed automation rules.
func BenchmarkTable2RuleGeneration(b *testing.B) {
	tb := sim.ContextActLike()
	for i := 0; i < b.N; i++ {
		engine, err := automation.NewEngine(tb.Rules)
		if err != nil {
			b.Fatal(err)
		}
		if engine.MaxChainLength() < 2 {
			b.Fatal("no rule chains")
		}
	}
}

// BenchmarkTable3InteractionMining regenerates Table III: the full
// simulate→preprocess→TemporalPC pipeline.
func BenchmarkTable3InteractionMining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Setup(nil, experiments.Config{Seed: int64(i + 1), Days: benchDays})
		if err != nil {
			b.Fatal(err)
		}
		res := p.EvaluateMining()
		b.ReportMetric(res.Confusion.Precision(), "precision")
		b.ReportMetric(res.Confusion.Recall(), "recall")
	}
}

// BenchmarkMiningPrecisionRecall regenerates the §VI-B headline numbers on
// the shared pipeline (mining evaluation only).
func BenchmarkMiningPrecisionRecall(b *testing.B) {
	p := sharedPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.EvaluateMining()
		b.ReportMetric(res.Confusion.Precision(), "precision")
		b.ReportMetric(res.Confusion.Recall(), "recall")
	}
}

// BenchmarkTable4Contextual regenerates one Table IV row per iteration,
// cycling through the four anomaly cases.
func BenchmarkTable4Contextual(b *testing.B) {
	p := sharedPipeline(b)
	cases := experiments.AllContextualCases()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		res, err := p.ContextualDetection(c, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Confusion.Precision(), "precision")
		b.ReportMetric(res.Confusion.Recall(), "recall")
	}
}

// BenchmarkFigure5Baselines regenerates one Figure 5 group: the same
// injected stream replayed through CausalIoT, the Markov chain, the OCSVM,
// and HAWatcher.
func BenchmarkFigure5Baselines(b *testing.B) {
	p := sharedPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := p.BaselineComparison(inject.RemoteControl, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 4 {
			b.Fatalf("detectors = %d", len(results))
		}
	}
}

// BenchmarkTable5Collective regenerates one Table V row per iteration,
// cycling through the three cases at k_max = 3.
func BenchmarkTable5Collective(b *testing.B) {
	p := sharedPipeline(b)
	cases := experiments.AllCollectiveCases()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cases[i%len(cases)]
		res, err := p.CollectiveDetection(c, 0, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.DetectedRate(), "detected")
		b.ReportMetric(res.Report.TrackedRate(), "tracked")
	}
}

// BenchmarkTemporalPCWorkedExample regenerates the Figure 2 / Figure 4
// worked example: TemporalPC on a three-device light→heater→temperature
// chain, pruning the spurious light→temperature edge.
func BenchmarkTemporalPCWorkedExample(b *testing.B) {
	reg, err := timeseries.NewRegistry([]string{"light", "heater", "temp"})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	flip := func(v int, p float64) int {
		if rng.Float64() < p {
			return 1 - v
		}
		return v
	}
	steps := make([]timeseries.Step, 0, 6000)
	light, heater := 0, 0
	for j := 0; j < 6000; j++ {
		switch j % 3 {
		case 0:
			light = rng.Intn(2)
			steps = append(steps, timeseries.Step{Device: 0, Value: light})
		case 1:
			heater = flip(light, 0.05)
			steps = append(steps, timeseries.Step{Device: 1, Value: heater})
		default:
			steps = append(steps, timeseries.Step{Device: 2, Value: flip(heater, 0.05)})
		}
	}
	series, err := timeseries.FromSteps(reg, timeseries.State{0, 0, 0}, steps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		miner := pc.NewMiner(pc.Config{})
		g, _, _, err := miner.Mine(series, 2, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		for _, pair := range g.DevicePairs() {
			if pair.Cause == 0 && pair.Outcome == 2 {
				b.Fatal("spurious light->temp edge survived")
			}
		}
	}
}

// --- Ablations (design decisions called out in DESIGN.md) ---

// BenchmarkAblationPCvsTemporalPC compares classic PC (Meek-rule
// orientation) against TemporalPC on the same chain data: classic PC leaves
// Markov-equivalent edges unoriented, the motivation of §V-B.
func BenchmarkAblationPCvsTemporalPC(b *testing.B) {
	n := 4000
	x := make([]int, n)
	z := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = (i / 2) % 2
		z[i] = x[i]
		y[i] = z[i]
		if i%17 == 0 {
			z[i] = 1 - z[i]
		}
		if i%19 == 0 {
			y[i] = 1 - y[i]
		}
	}
	samples := []stats.Sample{
		{Values: x, Arity: 2},
		{Values: y, Arity: 2},
		{Values: z, Arity: 2},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _, err := pc.ClassicPC([]string{"X", "Y", "Z"}, samples, pc.Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(p.CountUndirected()), "unoriented-edges")
	}
}

// BenchmarkAblationSmoothing sweeps the CPT Laplace pseudo-count: heavy
// smoothing caps the anomaly score of sparse contexts (a context seen n
// times can never score beyond 1-s/(n+2s)).
func BenchmarkAblationSmoothing(b *testing.B) {
	for _, s := range []float64{0.01, 1} {
		b.Run(map[float64]string{0.01: "s0.01", 1: "s1"}[s], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cpt := dig.NewCPT([]dig.Node{{Device: 0, Lag: 1}}, s)
				for k := 0; k < 50; k++ {
					if err := cpt.Observe([]int{1}, 0); err != nil {
						b.Fatal(err)
					}
				}
				p, err := cpt.Prob(1, []int{1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(1-p, "max-score")
			}
		})
	}
}

// BenchmarkAblationTau sweeps the maximum time lag: a larger τ multiplies
// the candidate causes and the CI-test budget (§V-D).
func BenchmarkAblationTau(b *testing.B) {
	tb := sim.ContextActLike()
	simr, err := sim.NewSimulator(tb, sim.Config{Seed: 2, Days: 2})
	if err != nil {
		b.Fatal(err)
	}
	log, err := simr.Run()
	if err != nil {
		b.Fatal(err)
	}
	for _, tau := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "tau1", 2: "tau2", 3: "tau3"}[tau], func(b *testing.B) {
			pre, err := preprocess.New(tb.Devices, preprocess.Config{TauOverride: tau})
			if err != nil {
				b.Fatal(err)
			}
			res, err := pre.Process(log)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				miner := pc.NewMiner(pc.Config{MaxCondSize: 3, MinObsPerDOF: 5, MaxParents: 8})
				_, _, st, err := miner.Mine(res.Series, tau, 0.01)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(st.Tests), "ci-tests")
			}
		})
	}
}

// BenchmarkAblationQ sweeps the threshold percentile q of the score
// calculator (§V-C).
func BenchmarkAblationQ(b *testing.B) {
	p := sharedPipeline(b)
	for _, q := range []float64{95, 99, 99.9} {
		b.Run(map[float64]string{95: "q95", 99: "q99", 99.9: "q99.9"}[q], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := monitor.Threshold(p.Graph, p.Train, q)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(c, "threshold")
			}
		})
	}
}

// BenchmarkAblationAnchors compares all-snapshot CI anchoring (the paper's
// formulation, default) with event anchoring.
func BenchmarkAblationAnchors(b *testing.B) {
	for _, mode := range []string{"all", "event"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := experiments.Setup(nil, experiments.Config{
					Seed: 3, Days: 3, EventAnchors: mode == "event",
				})
				if err != nil {
					b.Fatal(err)
				}
				res := p.EvaluateMining()
				b.ReportMetric(res.Confusion.Precision(), "precision")
				b.ReportMetric(res.Confusion.Recall(), "recall")
			}
		})
	}
}

// --- Microbenchmarks for the hot paths ---

// BenchmarkGSquareTest measures one conditional-independence test over 10k
// observations with a two-variable conditioning set.
func BenchmarkGSquareTest(b *testing.B) {
	n := 10000
	mk := func(seed int) stats.Sample {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = (i / (seed + 1)) % 2
		}
		return stats.Sample{Values: vals, Arity: 2}
	}
	x, y := mk(1), mk(2)
	zs := []stats.Sample{mk(3), mk(4)}
	tester := stats.GSquareTester{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tester.Test(x, y, zs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorThroughput measures runtime event validation — the O(1)
// table lookup the paper's §V-D complexity analysis promises.
func BenchmarkDetectorThroughput(b *testing.B) {
	p := sharedPipeline(b)
	det, err := monitor.NewDetector(p.Graph, p.Threshold, 1, p.Test.State(0))
	if err != nil {
		b.Fatal(err)
	}
	steps := make([]timeseries.Step, p.Test.Len())
	for j := 1; j <= p.Test.Len(); j++ {
		st, err := p.Test.StepAt(j)
		if err != nil {
			b.Fatal(err)
		}
		steps[j-1] = st
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := steps[i%len(steps)]
		if _, _, err := det.Process(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhantomUpdate measures the phantom state machine's sliding
// window update.
func BenchmarkPhantomUpdate(b *testing.B) {
	reg, err := timeseries.NewRegistry(sim.ContextActLike().DeviceNames())
	if err != nil {
		b.Fatal(err)
	}
	pm, err := monitor.NewPhantom(reg, 3, make(timeseries.State, reg.Len()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pm.Update(timeseries.Step{Device: i % reg.Len(), Value: i % 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPTFit measures maximum-likelihood CPT estimation over the
// shared training series.
func BenchmarkCPTFit(b *testing.B) {
	p := sharedPipeline(b)
	parents := make([][]dig.Node, p.Train.Registry.Len())
	for i := range parents {
		parents[i] = p.Graph.Parents(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := dig.New(p.Train.Registry, p.Graph.Tau, parents, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Fit(p.Train); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving hub benchmarks ---

var (
	hubSysOnce sync.Once
	hubSys     *causaliot.System
	hubSys2    *causaliot.System
	hubStream  []causaliot.Event
	hubSysErr  error
)

// hubBenchSystem trains two systems on the same two-device inventory
// (for hot-swap benches) and synthesizes a runtime stream to replay.
func hubBenchSystem(b *testing.B) (*causaliot.System, *causaliot.System, []causaliot.Event) {
	b.Helper()
	hubSysOnce.Do(func() {
		devices := []causaliot.Device{
			{Name: "presence", Type: causaliot.Presence, Location: "hall"},
			{Name: "light", Type: causaliot.Switch, Location: "hall"},
		}
		gen := func(n int, seed int64) []causaliot.Event {
			rng := rand.New(rand.NewSource(seed))
			ts := time.Date(2023, 6, 1, 8, 0, 0, 0, time.UTC)
			var log []causaliot.Event
			for i := 0; i < n; i++ {
				ts = ts.Add(time.Duration(20+rng.Intn(20)) * time.Second)
				log = append(log,
					causaliot.Event{Time: ts, Device: "presence", Value: 1},
					causaliot.Event{Time: ts.Add(3 * time.Second), Device: "light", Value: 1},
					causaliot.Event{Time: ts.Add(time.Minute), Device: "presence", Value: 0},
					causaliot.Event{Time: ts.Add(time.Minute + 4*time.Second), Device: "light", Value: 0},
				)
			}
			return log
		}
		hubSys, hubSysErr = causaliot.Train(devices, gen(400, 1), causaliot.Config{Tau: 2})
		if hubSysErr != nil {
			return
		}
		hubSys2, hubSysErr = causaliot.Train(devices, gen(400, 2), causaliot.Config{Tau: 2})
		hubStream = gen(2000, 3)
	})
	if hubSysErr != nil {
		b.Fatal(hubSysErr)
	}
	return hubSys, hubSys2, hubStream
}

// pick returns a when cond holds, else b.
func pick(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

// BenchmarkHubThroughput measures hub ingest→detect throughput as the
// tenant count and worker pool grow: events/sec scaling with workers at
// tenants > 1 demonstrates cross-home parallelism on top of the per-home
// ordered streams.
func BenchmarkHubThroughput(b *testing.B) {
	sys, _, stream := hubBenchSystem(b)
	for _, tenants := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("tenants%d/workers%d", tenants, workers), func(b *testing.B) {
				h := causaliot.NewHub(causaliot.HubConfig{
					Workers:     workers,
					QueueSize:   4096,
					AlarmBuffer: 16, // overflow drops, keeping the bench unattended
				})
				for i := 0; i < tenants; i++ {
					if err := h.Register(fmt.Sprintf("home-%d", i), sys, causaliot.TenantOptions{}); err != nil {
						b.Fatal(err)
					}
				}
				each := b.N / tenants
				b.ResetTimer()
				var wg sync.WaitGroup
				for i := 0; i < tenants; i++ {
					wg.Add(1)
					go func(name string, extra int) {
						defer wg.Done()
						for j := 0; j < each+extra; j++ {
							if err := h.Submit(name, stream[j%len(stream)]); err != nil {
								b.Error(err)
								return
							}
						}
					}(fmt.Sprintf("home-%d", i), pick(i == 0, b.N-each*tenants, 0))
				}
				wg.Wait()
				if err := h.Close(); err != nil {
					b.Fatal(err)
				}
				elapsed := b.Elapsed()
				if s := h.Stats().Total; s.Processed != uint64(b.N) {
					b.Fatalf("processed %d of %d events", s.Processed, b.N)
				}
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed.Seconds(), "events/sec")
				}
			})
		}
	}
}

// BenchmarkHubHotSwap measures model hot-swap under load: a retrained
// system is swapped in every 512 events while producers keep streaming.
// The bench fails if a single in-flight event is dropped.
func BenchmarkHubHotSwap(b *testing.B) {
	sysA, sysB, stream := hubBenchSystem(b)
	h := causaliot.NewHub(causaliot.HubConfig{Workers: 4, QueueSize: 4096, AlarmBuffer: 16})
	const tenants = 4
	for i := 0; i < tenants; i++ {
		if err := h.Register(fmt.Sprintf("home-%d", i), sysA, causaliot.TenantOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	swaps := 0
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("home-%d", i%tenants)
		if err := h.Submit(name, stream[i%len(stream)]); err != nil {
			b.Fatal(err)
		}
		if i%512 == 511 {
			sys := sysA
			if swaps%2 == 0 {
				sys = sysB
			}
			if err := h.Swap(name, sys); err != nil {
				b.Fatal(err)
			}
			swaps++
		}
	}
	if err := h.Close(); err != nil {
		b.Fatal(err)
	}
	s := h.Stats().Total
	if s.Processed != uint64(b.N) || s.Dropped != 0 {
		b.Fatalf("hot swap dropped events: processed %d of %d, dropped %d", s.Processed, b.N, s.Dropped)
	}
	b.ReportMetric(float64(swaps), "swaps")
}

// BenchmarkSimulator measures raw event generation throughput.
func BenchmarkSimulator(b *testing.B) {
	tb := sim.ContextActLike()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := sim.NewSimulator(tb, sim.Config{Seed: int64(i), Days: 1})
		if err != nil {
			b.Fatal(err)
		}
		log, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(log)), "events/day")
	}
}
