// Package metrics implements the evaluation measures of paper §VI:
// precision/recall/F1/accuracy over event classifications (Tables IV and
// Figure 5), interaction-set comparison for mining evaluation (§VI-B), and
// the chain-level measures of collective anomaly detection (Table V).
package metrics

// Confusion is a binary-classification count.
type Confusion struct {
	TP, FP, FN, TN int
}

// Add accumulates another confusion table.
func (c *Confusion) Add(other Confusion) {
	c.TP += other.TP
	c.FP += other.FP
	c.FN += other.FN
	c.TN += other.TN
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN)/total, or 0 when empty.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.FN + c.TN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// Classify builds a confusion table from the predicted positive set and the
// truth set over a universe of n items indexed 1..n.
func Classify(n int, predicted, truth map[int]bool) Confusion {
	var c Confusion
	for i := 1; i <= n; i++ {
		switch {
		case predicted[i] && truth[i]:
			c.TP++
		case predicted[i] && !truth[i]:
			c.FP++
		case !predicted[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// ClassifyTolerant is Classify with a position tolerance: a prediction
// within tol positions of a truth item counts as hitting it (the paper
// compares injected positions with alarming positions; alarms may surface
// one event later when an injected anomaly cascades). Each truth item can
// be claimed once.
func ClassifyTolerant(n, tol int, predicted, truth map[int]bool) Confusion {
	var c Confusion
	claimed := make(map[int]bool)
	matchedPred := make(map[int]bool)
	for i := 1; i <= n; i++ {
		if !predicted[i] {
			continue
		}
		for d := 0; d <= tol; d++ {
			for _, j := range []int{i - d, i + d} {
				if j >= 1 && j <= n && truth[j] && !claimed[j] {
					claimed[j] = true
					matchedPred[i] = true
					break
				}
			}
			if matchedPred[i] {
				break
			}
		}
	}
	for i := 1; i <= n; i++ {
		switch {
		case predicted[i] && matchedPred[i]:
			c.TP++
		case predicted[i]:
			c.FP++
		case truth[i] && !claimed[i]:
			c.FN++
		case !truth[i]:
			c.TN++
		}
	}
	return c
}

// PairConfusion compares a mined interaction set against ground truth
// (§VI-B): TP = mined ∩ truth, FP = mined \ truth, FN = truth \ mined.
func PairConfusion(mined, truth [][2]string) Confusion {
	truthSet := make(map[[2]string]bool, len(truth))
	for _, p := range truth {
		truthSet[p] = true
	}
	var c Confusion
	seen := make(map[[2]string]bool, len(mined))
	for _, p := range mined {
		if seen[p] {
			continue
		}
		seen[p] = true
		if truthSet[p] {
			c.TP++
		} else {
			c.FP++
		}
	}
	c.FN = len(truthSet) - c.TP
	return c
}

// ChainReport aggregates collective-anomaly detection quality (Table V).
type ChainReport struct {
	// Chains is the number of injected anomaly chains.
	Chains int
	// Detected counts chains with at least one alarmed event.
	Detected int
	// Tracked counts chains whose events were all alarmed.
	Tracked int
	// AvgChainLength is the mean injected chain length.
	AvgChainLength float64
	// AvgDetectionLength is the mean number of chain events alarmed,
	// over detected chains.
	AvgDetectionLength float64
}

// DetectedRate returns the fraction of chains detected.
func (r ChainReport) DetectedRate() float64 {
	if r.Chains == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Chains)
}

// TrackedRate returns the fraction of detected chains fully tracked.
func (r ChainReport) TrackedRate() float64 {
	if r.Chains == 0 {
		return 0
	}
	return float64(r.Tracked) / float64(r.Chains)
}

// EvaluateChains scores alarmed positions against injected chains: chains
// is a list of event-index lists; alarmed is the set of positions covered
// by raised alarms.
func EvaluateChains(chains [][]int, alarmed map[int]bool) ChainReport {
	r := ChainReport{Chains: len(chains)}
	var totalLen, detectedLen int
	for _, chain := range chains {
		totalLen += len(chain)
		covered := 0
		for _, idx := range chain {
			if alarmed[idx] {
				covered++
			}
		}
		if covered > 0 {
			r.Detected++
			detectedLen += covered
		}
		if covered == len(chain) {
			r.Tracked++
		}
	}
	if r.Chains > 0 {
		r.AvgChainLength = float64(totalLen) / float64(r.Chains)
	}
	if r.Detected > 0 {
		r.AvgDetectionLength = float64(detectedLen) / float64(r.Detected)
	}
	return r
}
