package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestConfusionMeasures(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 4, TN: 86}
	if !approx(c.Precision(), 0.8) {
		t.Errorf("precision = %v", c.Precision())
	}
	if !approx(c.Recall(), 8.0/12.0) {
		t.Errorf("recall = %v", c.Recall())
	}
	wantF1 := 2 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0/12.0)
	if !approx(c.F1(), wantF1) {
		t.Errorf("f1 = %v, want %v", c.F1(), wantF1)
	}
	if !approx(c.Accuracy(), 0.94) {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.Accuracy() != 0 {
		t.Error("empty confusion should yield zeros")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	a.Add(Confusion{TP: 10, FP: 20, FN: 30, TN: 40})
	if a != (Confusion{TP: 11, FP: 22, FN: 33, TN: 44}) {
		t.Errorf("Add = %+v", a)
	}
}

func TestClassify(t *testing.T) {
	pred := map[int]bool{1: true, 3: true}
	truth := map[int]bool{1: true, 2: true}
	c := Classify(4, pred, truth)
	if c != (Confusion{TP: 1, FP: 1, FN: 1, TN: 1}) {
		t.Errorf("Classify = %+v", c)
	}
}

func TestClassifyTolerant(t *testing.T) {
	// Prediction at 4 matches truth at 3 with tolerance 1.
	pred := map[int]bool{4: true}
	truth := map[int]bool{3: true}
	c := ClassifyTolerant(5, 1, pred, truth)
	if c.TP != 1 || c.FP != 0 || c.FN != 0 {
		t.Errorf("tolerant = %+v", c)
	}
	// With tolerance 0 it is a miss and a false alarm.
	c = ClassifyTolerant(5, 0, pred, truth)
	if c.TP != 0 || c.FP != 1 || c.FN != 1 {
		t.Errorf("strict = %+v", c)
	}
	// A truth item can only be claimed once.
	pred = map[int]bool{2: true, 4: true}
	truth = map[int]bool{3: true}
	c = ClassifyTolerant(5, 1, pred, truth)
	if c.TP != 1 || c.FP != 1 {
		t.Errorf("double claim = %+v", c)
	}
}

func TestPairConfusion(t *testing.T) {
	mined := [][2]string{{"a", "b"}, {"b", "c"}, {"x", "y"}, {"a", "b"}} // dup ignored
	truth := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}
	c := PairConfusion(mined, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 {
		t.Errorf("PairConfusion = %+v", c)
	}
	if !approx(c.Precision(), 2.0/3.0) || !approx(c.Recall(), 2.0/3.0) {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
}

func TestEvaluateChains(t *testing.T) {
	chains := [][]int{
		{10, 11, 12}, // fully tracked
		{20, 21},     // partially detected
		{30, 31, 32}, // undetected
	}
	alarmed := map[int]bool{10: true, 11: true, 12: true, 21: true}
	r := EvaluateChains(chains, alarmed)
	if r.Chains != 3 || r.Detected != 2 || r.Tracked != 1 {
		t.Errorf("report = %+v", r)
	}
	if !approx(r.DetectedRate(), 2.0/3.0) || !approx(r.TrackedRate(), 1.0/3.0) {
		t.Errorf("rates = %v %v", r.DetectedRate(), r.TrackedRate())
	}
	if !approx(r.AvgChainLength, 8.0/3.0) {
		t.Errorf("avg chain length = %v", r.AvgChainLength)
	}
	if !approx(r.AvgDetectionLength, 2.0) { // (3+1)/2
		t.Errorf("avg detection length = %v", r.AvgDetectionLength)
	}
}

func TestEvaluateChainsEmpty(t *testing.T) {
	r := EvaluateChains(nil, nil)
	if r.DetectedRate() != 0 || r.TrackedRate() != 0 || r.AvgChainLength != 0 || r.AvgDetectionLength != 0 {
		t.Errorf("empty report = %+v", r)
	}
}

// Property: Classify counts always sum to n, and accuracy/precision/recall
// stay in [0,1].
func TestClassifyProperty(t *testing.T) {
	f := func(rawN uint8, predBits, truthBits uint32) bool {
		n := int(rawN%30) + 1
		pred := make(map[int]bool)
		truth := make(map[int]bool)
		for i := 1; i <= n; i++ {
			if predBits>>(i%32)&1 == 1 {
				pred[i] = true
			}
			if truthBits>>(i%32)&1 == 1 {
				truth[i] = true
			}
		}
		c := Classify(n, pred, truth)
		if c.TP+c.FP+c.FN+c.TN != n {
			return false
		}
		for _, v := range []float64{c.Precision(), c.Recall(), c.F1(), c.Accuracy()} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
