// Command benchfleet records the sharded-serving baseline to a JSON file
// (BENCH_fleet.json at the repo root), the fleet-side companion of
// benchdetect. It benchmarks end-to-end Submit throughput on a single
// unsharded Hub against Fleets of increasing shard counts hosting the same
// tenants (Block backpressure couples the submit rate to processing
// throughput, so ns/op measures the whole ingest-to-score pipeline), plus
// the routing layer alone (route lookup on a warm table) and the cost of a
// live migration under load, then writes ns/op, events/sec, and the
// sharded-vs-unsharded speedups.
//
//	go run ./cmd/benchfleet -out BENCH_fleet.json [-days 4] [-tenants 16]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	causaliot "github.com/causaliot/causaliot"
	"github.com/causaliot/causaliot/internal/dig"
	"github.com/causaliot/causaliot/internal/event"
	"github.com/causaliot/causaliot/internal/sim"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// dedupReport is the many-tenants-few-models memory scenario: every tenant
// restores its own model copy (the fleet resume/migration path), once with
// the content-addressed model cache disabled (each tenant keeps a private
// compiled model) and once enabled (tenants of the same model share one
// interned instance). Tenants-per-GB is the headline fleet-capacity number.
type dedupReport struct {
	Tenants               int     `json:"tenants"`
	Models                int     `json:"models"`
	PrivateBytesPerTenant float64 `json:"private_bytes_per_tenant"`
	DedupBytesPerTenant   float64 `json:"dedup_bytes_per_tenant"`
	PrivateTenantsPerGB   float64 `json:"private_tenants_per_gb"`
	DedupTenantsPerGB     float64 `json:"dedup_tenants_per_gb"`
	Improvement           float64 `json:"improvement"`
}

type report struct {
	Generated    string             `json:"generated"`
	GoVersion    string             `json:"go_version"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	CPUs         int                `json:"cpus"`
	SimDays      int                `json:"sim_days"`
	Tenants      int                `json:"tenants"`
	Benchmarks   []benchResult      `json:"benchmarks"`
	EventsPerSec map[string]float64 `json:"events_per_sec"`
	Speedup      map[string]float64 `json:"speedup"`
	MigrationMs  float64            `json:"migration_ms"`
	ModelDedup   *dedupReport       `json:"model_dedup,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output JSON file")
	days := flag.Int("days", 4, "simulated days of training data")
	tenants := flag.Int("tenants", 16, "homes hosted per topology")
	dedupTenants := flag.Int("dedup-tenants", 1000, "homes in the model-dedup memory scenario (0 disables)")
	flag.Parse()
	if err := run(*out, *days, *tenants, *dedupTenants); err != nil {
		fmt.Fprintln(os.Stderr, "benchfleet:", err)
		os.Exit(1)
	}
}

func run(out string, days, tenants, dedupTenants int) error {
	tb := sim.ContextActLike()
	simulator, err := sim.NewSimulator(tb, sim.Config{Seed: 7, Days: days})
	if err != nil {
		return err
	}
	log, err := simulator.Run()
	if err != nil {
		return err
	}
	sys, events, err := trainFacade(tb, log)
	if err != nil {
		return err
	}

	rep := report{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.NumCPU(),
		SimDays:      days,
		Tenants:      tenants,
		EventsPerSec: make(map[string]float64),
		Speedup:      make(map[string]float64),
	}

	measure := func(name string, fn func(b *testing.B)) benchResult {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		rep.EventsPerSec[name] = 1e9 / res.NsPerOp
		fmt.Printf("%-28s %12.0f ns/op %10d B/op %8d allocs/op %14.0f events/sec (n=%d)\n",
			name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, rep.EventsPerSec[name], res.Iterations)
		return res
	}

	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("home-%d", i)
	}
	register := func(h causaliot.Host) error {
		for _, name := range names {
			err := h.Register(name, sys, causaliot.TenantOptions{
				OnAlarm: func(string, *causaliot.Alarm, float64) {},
			})
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Submit throughput, round-robin across all tenants, each worker pool
	// sized so total workers stay constant across topologies — the speedup
	// therefore measures routing overhead and lock-contention relief, not
	// extra parallelism handed to the sharded runs.
	totalWorkers := runtime.NumCPU()
	if totalWorkers < 4 {
		totalWorkers = 4
	}
	// testing.Benchmark re-runs the function with growing b.N, so each run
	// must build (and close) a fresh host.
	submit := func(newHost func() causaliot.Host) func(b *testing.B) {
		return func(b *testing.B) {
			h := newHost()
			if err := register(h); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if err := h.Submit(names[i%tenants], events[i%len(events)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			if err := h.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}
	hubRes := measure("Submit/hub", submit(func() causaliot.Host {
		return causaliot.NewHub(causaliot.HubConfig{Workers: totalWorkers})
	}))
	for _, shards := range []int{2, 4} {
		w := totalWorkers / shards
		if w < 1 {
			w = 1
		}
		res := measure(fmt.Sprintf("Submit/fleet(shards=%d)", shards),
			submit(func() causaliot.Host {
				return causaliot.NewFleet(causaliot.FleetConfig{
					Shards: shards,
					Hub:    causaliot.HubConfig{Workers: w},
				})
			}))
		rep.Speedup[fmt.Sprintf("fleet_%d_vs_hub", shards)] = hubRes.NsPerOp / res.NsPerOp
	}

	// Routing layer alone: Submit on a fleet whose tenants drop every event
	// at the queue head would still score it, so instead measure ShardOf —
	// the pure ring lookup on a warm route table.
	f := causaliot.NewFleet(causaliot.FleetConfig{Shards: 4, Hub: causaliot.HubConfig{Workers: 1}})
	if err := register(f); err != nil {
		return err
	}
	measure("Route/shardOf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := f.ShardOf(names[i%tenants]); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Live migration cost under load: producers hammer every tenant while
	// one tenant ping-pongs between shards; wall time per Migrate covers
	// quiesce, checkpoint export/restore, and gap replay.
	stop := make(chan struct{})
	doneProducing := make(chan struct{})
	go func() {
		defer close(doneProducing)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.Submit(names[i%tenants], events[i%len(events)]); err != nil {
				return
			}
			i++
		}
	}()
	const flips = 20
	shards := f.Shards()
	start := time.Now()
	for flip := 0; flip < flips; flip++ {
		if err := f.Migrate(names[0], shards[flip%len(shards)]); err != nil {
			return err
		}
	}
	rep.MigrationMs = float64(time.Since(start).Milliseconds()) / flips
	close(stop)
	<-doneProducing
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%-28s %12.2f ms/migration (quiesce + checkpoint handoff + replay, under load)\n",
		"Migrate/underLoad", rep.MigrationMs)

	// Many tenants, few models: the fleet-capacity scenario. Four distinct
	// trained models spread across N restoring tenants — first each tenant
	// deserializing a private model copy (the cache disabled), then with the
	// content-addressed cache interning one shared Compiled per model.
	if dedupTenants > 0 {
		const modelCount = 4
		systems := make([]*causaliot.System, modelCount)
		blobs := make([][]byte, modelCount)
		systems[0] = sys
		for m := 1; m < modelCount; m++ {
			simv, err := sim.NewSimulator(tb, sim.Config{Seed: int64(7 + m), Days: days})
			if err != nil {
				return err
			}
			logv, err := simv.Run()
			if err != nil {
				return err
			}
			sysv, _, err := trainFacade(tb, logv)
			if err != nil {
				return err
			}
			systems[m] = sysv
		}
		for m, s := range systems {
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				return err
			}
			blobs[m] = buf.Bytes()
		}

		// restoreAll measures the settled per-tenant heap cost of hosting
		// dedupTenants monitors restored from the serialized models, with the
		// model cache on or off.
		restoreAll := func(enabled bool) (float64, error) {
			dig.SetCacheEnabled(enabled)
			dig.CacheReset()
			defer func() {
				dig.CacheReset()
				dig.SetCacheEnabled(true)
			}()
			loaded := make([]*causaliot.System, dedupTenants)
			monitors := make([]*causaliot.Monitor, dedupTenants)
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			for i := range monitors {
				s, err := causaliot.Load(bytes.NewReader(blobs[i%modelCount]))
				if err != nil {
					return 0, err
				}
				mon, err := s.NewMonitor()
				if err != nil {
					return 0, err
				}
				loaded[i], monitors[i] = s, mon
			}
			runtime.GC()
			runtime.ReadMemStats(&m1)
			perTenant := (float64(m1.HeapAlloc) - float64(m0.HeapAlloc)) / float64(dedupTenants)
			for _, mon := range monitors {
				mon.Close()
			}
			runtime.KeepAlive(loaded)
			return perTenant, nil
		}
		private, err := restoreAll(false)
		if err != nil {
			return err
		}
		deduped, err := restoreAll(true)
		if err != nil {
			return err
		}
		const gb = float64(1 << 30)
		rep.ModelDedup = &dedupReport{
			Tenants:               dedupTenants,
			Models:                modelCount,
			PrivateBytesPerTenant: private,
			DedupBytesPerTenant:   deduped,
			PrivateTenantsPerGB:   gb / private,
			DedupTenantsPerGB:     gb / deduped,
			Improvement:           private / deduped,
		}
		fmt.Printf("%-28s %12.0f B/tenant private, %.0f B/tenant deduped (%d tenants, %d models): %.0f vs %.0f tenants/GB — %.1fx\n",
			"ModelDedup/restore", private, deduped, dedupTenants, modelCount,
			rep.ModelDedup.PrivateTenantsPerGB, rep.ModelDedup.DedupTenantsPerGB, rep.ModelDedup.Improvement)

		// Same-model batch scheduling: submit throughput across many homes
		// sharing the four models, with the scheduler's model grouping off
		// and on. Grouping never changes results; the delta is pure locality
		// and scheduling overhead.
		groupHomes := 4 * tenants
		gnames := make([]string, groupHomes)
		for i := range gnames {
			gnames[i] = fmt.Sprintf("ghome-%d", i)
		}
		submitMany := func(newHost func() causaliot.Host) func(b *testing.B) {
			return func(b *testing.B) {
				h := newHost()
				for i, name := range gnames {
					err := h.Register(name, systems[i%modelCount], causaliot.TenantOptions{
						OnAlarm: func(string, *causaliot.Alarm, float64) {},
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						if err := h.Submit(gnames[i%groupHomes], events[i%len(events)]); err != nil {
							b.Fatal(err)
						}
						i++
					}
				})
				b.StopTimer()
				if err := h.Close(); err != nil {
					b.Fatal(err)
				}
			}
		}
		ungroupedRes := measure("Submit/manyTenants(solo)", submitMany(func() causaliot.Host {
			return causaliot.NewHub(causaliot.HubConfig{Workers: totalWorkers, GroupBatch: -1})
		}))
		groupedRes := measure("Submit/manyTenants(grouped)", submitMany(func() causaliot.Host {
			return causaliot.NewHub(causaliot.HubConfig{Workers: totalWorkers})
		}))
		rep.Speedup["grouped_vs_ungrouped"] = ungroupedRes.NsPerOp / groupedRes.NsPerOp
		fmt.Printf("%-28s %.2fx events/sec vs ungrouped\n", "GroupedDrain/speedup", rep.Speedup["grouped_vs_ungrouped"])
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("speedups: fleet(2) %.2fx, fleet(4) %.2fx vs hub (%d CPUs, %d tenants) — wrote %s\n",
		rep.Speedup["fleet_2_vs_hub"], rep.Speedup["fleet_4_vs_hub"], runtime.NumCPU(), tenants, out)
	return nil
}

// trainFacade trains a public-API System on the simulated home and converts
// its log into facade events for replay.
func trainFacade(tb *sim.Testbed, log event.Log) (*causaliot.System, []causaliot.Event, error) {
	devices := make([]causaliot.Device, len(tb.Devices))
	for i, d := range tb.Devices {
		typ, err := deviceTypeFor(d.Attribute)
		if err != nil {
			return nil, nil, err
		}
		devices[i] = causaliot.Device{Name: d.Name, Type: typ, Location: d.Location}
	}
	events := make([]causaliot.Event, len(log))
	for i, ev := range log {
		events[i] = causaliot.Event{Time: ev.Timestamp, Device: ev.Device, Value: ev.Value}
	}
	sys, err := causaliot.Train(devices, events, causaliot.Config{KMax: 3})
	if err != nil {
		return nil, nil, err
	}
	return sys, events, nil
}

func deviceTypeFor(attr event.Attribute) (causaliot.DeviceType, error) {
	switch attr.Name {
	case event.Switch.Name:
		return causaliot.Switch, nil
	case event.PresenceSensor.Name:
		return causaliot.Presence, nil
	case event.ContactSensor.Name:
		return causaliot.Contact, nil
	case event.Dimmer.Name:
		return causaliot.Dimmer, nil
	case event.WaterMeter.Name:
		return causaliot.WaterMeter, nil
	case event.PowerSensor.Name:
		return causaliot.Power, nil
	case event.BrightnessSensor.Name:
		return causaliot.Brightness, nil
	}
	switch attr.Class {
	case event.Binary:
		return causaliot.GenericBinary, nil
	case event.ResponsiveNumeric:
		return causaliot.GenericResponsive, nil
	case event.AmbientNumeric:
		return causaliot.GenericAmbient, nil
	}
	return 0, fmt.Errorf("benchfleet: unmapped attribute %q", attr.Name)
}
