package causaliot

import (
	"strings"
	"testing"
)

func TestExplanationRendersContext(t *testing.T) {
	ev := AnomalousEvent{
		Device: "light",
		State:  1,
		Score:  0.9998,
		Context: map[string]int{
			"presence@t-1": 0,
			"dimmer@t-2":   1,
		},
	}
	got := ev.Explanation()
	for _, want := range []string{"light activation", "0.02%", "presence@t-1 was off/low", "dimmer@t-2 was on/high"} {
		if !strings.Contains(got, want) {
			t.Errorf("explanation missing %q:\n%s", want, got)
		}
	}
}

func TestExplanationWithoutCauses(t *testing.T) {
	ev := AnomalousEvent{Device: "plug", State: 0, Score: 0.8}
	got := ev.Explanation()
	if !strings.Contains(got, "plug deactivation") || !strings.Contains(got, "no mined causes") {
		t.Errorf("explanation = %s", got)
	}
}

func TestAlarmExplain(t *testing.T) {
	if got := (*Alarm)(nil).Explain(); got != "no anomaly" {
		t.Errorf("nil alarm = %q", got)
	}
	a := &Alarm{
		Abrupt: true,
		Events: []AnomalousEvent{
			{Device: "light", State: 1, Score: 0.99, Context: map[string]int{"presence@t-1": 0}},
			{Device: "heater", State: 1, Score: 0.01},
			{Device: "window", State: 1, Score: 0.02},
		},
	}
	got := a.Explain()
	for _, want := range []string{"contextual anomaly: light", "collective anomaly chain (2 events", "cut short", "heater activated", "window activated"} {
		if !strings.Contains(got, want) {
			t.Errorf("alarm explanation missing %q:\n%s", want, got)
		}
	}
}
