package faults

import (
	"errors"
	"testing"
	"time"

	"github.com/causaliot/causaliot/internal/hub"
)

func TestScheduleIsDeterministic(t *testing.T) {
	w := Weights{Error: 0.2, Panic: 0.1, Slow: 0.1, Wedge: 0.05}
	a, err := NewSchedule(42, 500, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSchedule(42, 500, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("same seed diverged at %d: %v != %v", i, a.At(i), b.At(i))
		}
	}
	c, _ := NewSchedule(43, 500, w)
	same := 0
	for i := 0; i < 500; i++ {
		if a.At(i) == c.At(i) {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds produced identical schedules")
	}
}

func TestScheduleCoversEveryKind(t *testing.T) {
	s, err := NewSchedule(1, 2000, Weights{Error: 0.2, Panic: 0.2, Slow: 0.2, Wedge: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kind{OK, Error, Panic, Slow, Wedge} {
		if s.Count(k) == 0 {
			t.Errorf("2000-event schedule at 20%% weights never drew %v", k)
		}
	}
	// Out-of-range indices are OK, so a schedule fronts a longer stream.
	if s.At(-1) != OK || s.At(s.Len()) != OK {
		t.Error("out-of-range At() not OK")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(1, -1, Weights{}); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewSchedule(1, 10, Weights{Error: -0.1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewSchedule(1, 10, Weights{Error: 0.9, Panic: 0.9}); err == nil {
		t.Error("weights summing past 1 accepted")
	}
}

func TestProcExecutesSchedule(t *testing.T) {
	s, err := NewSchedule(7, 4, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build the plan instead: error, ok, slow, ok.
	s.kinds = []Kind{Error, OK, Slow, OK}
	p := &Proc{Schedule: s, SlowDelay: time.Millisecond}
	if _, err := p.Handle(hub.Event{}); !errors.Is(err, ErrInjected) {
		t.Errorf("event 0 = %v, want injected error", err)
	}
	if _, err := p.Handle(hub.Event{}); err != nil {
		t.Errorf("event 1 = %v, want success", err)
	}
	start := time.Now()
	if _, err := p.Handle(hub.Event{}); err != nil {
		t.Errorf("event 2 = %v, want slow success", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("slow fault did not stall")
	}
	func() {
		defer func() {
			if recover() != nil {
				t.Error("OK event panicked")
			}
		}()
		p.Handle(hub.Event{})
	}()
	if p.Calls() != 4 {
		t.Errorf("Calls = %d, want 4", p.Calls())
	}
}

func TestProcPanics(t *testing.T) {
	s, _ := NewSchedule(1, 1, Weights{Panic: 1})
	p := &Proc{Schedule: s}
	defer func() {
		if recover() == nil {
			t.Error("scheduled panic did not fire")
		}
	}()
	p.Handle(hub.Event{})
}

func TestProcWedgeReleases(t *testing.T) {
	s, _ := NewSchedule(1, 1, Weights{Wedge: 1})
	release := make(chan struct{})
	p := &Proc{Schedule: s, Release: release}
	done := make(chan struct{})
	go func() {
		p.Handle(hub.Event{})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("wedged Handle returned before release")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("released Handle never returned")
	}
}

func TestFailFirst(t *testing.T) {
	p := &FailFirst{N: 2}
	for i := 0; i < 2; i++ {
		if _, err := p.Handle(hub.Event{}); !errors.Is(err, ErrInjected) {
			t.Fatalf("event %d = %v, want injected error", i, err)
		}
	}
	if _, err := p.Handle(hub.Event{}); err != nil {
		t.Fatalf("event 2 = %v, want success", err)
	}
}

func TestClock(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Fatal("clock does not start at the given instant")
	}
	c.Advance(time.Minute)
	if got := c.Now(); !got.Equal(start.Add(time.Minute)) {
		t.Fatalf("advanced clock = %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		OK: "ok", Error: "error", Panic: "panic", Slow: "slow", Wedge: "wedge", Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
