package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonChiSquareAgreesWithGSquareAsymptotically(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 6000
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Intn(2)
		y[i] = x[i]
		if rng.Float64() < 0.3 {
			y[i] = rng.Intn(2)
		}
	}
	g, err := GSquareTester{}.Test(binarySample(x), binarySample(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PearsonChiSquareTester{}.Test(binarySample(x), binarySample(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both must strongly reject independence with statistics within ~10%.
	if g.PValue > 1e-6 || p.PValue > 1e-6 {
		t.Errorf("dependence not detected: G² p=%v X² p=%v", g.PValue, p.PValue)
	}
	ratio := g.Statistic / p.Statistic
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("G²=%v and X²=%v diverge (ratio %v)", g.Statistic, p.Statistic, ratio)
	}
	if g.DOF != p.DOF {
		t.Errorf("dof mismatch: %d vs %d", g.DOF, p.DOF)
	}
}

func TestPearsonChiSquareIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 4000
	x := make([]int, n)
	y := make([]int, n)
	z := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Intn(2)
		y[i] = rng.Intn(2)
		z[i] = rng.Intn(2)
	}
	res, err := PearsonChiSquareTester{}.Test(binarySample(x), binarySample(y), []Sample{binarySample(z)})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("independent variables rejected: p=%v", res.PValue)
	}
	if res.DOF != 2 {
		t.Errorf("dof = %d, want 2", res.DOF)
	}
}

func TestPearsonChiSquareValidationAndHeuristic(t *testing.T) {
	if _, err := (PearsonChiSquareTester{}).Test(binarySample([]int{0}), binarySample([]int{0, 1}), nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := (PearsonChiSquareTester{}).Test(binarySample(nil), binarySample(nil), nil); err == nil {
		t.Error("empty sample accepted")
	}
	x := binarySample([]int{0, 1, 0, 1})
	res, err := PearsonChiSquareTester{MinObsPerDOF: 100}.Test(x, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliable || res.PValue != 1 {
		t.Errorf("small-sample heuristic not applied: %+v", res)
	}
}

// Property: X² is non-negative, its p-value lies in [0,1], and it is
// symmetric in X and Y.
func TestPearsonChiSquareProperty(t *testing.T) {
	f := func(seed int64, rawN uint16) bool {
		n := int(rawN%400) + 8
		rng := rand.New(rand.NewSource(seed))
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(2)
			y[i] = rng.Intn(2)
		}
		a, err1 := PearsonChiSquareTester{}.Test(binarySample(x), binarySample(y), nil)
		b, err2 := PearsonChiSquareTester{}.Test(binarySample(y), binarySample(x), nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Statistic >= 0 && a.PValue >= 0 && a.PValue <= 1 &&
			almostEqual(a.Statistic, b.Statistic, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
