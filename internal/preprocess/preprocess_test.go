package preprocess

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/causaliot/causaliot/internal/event"
)

var t0 = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

func testDevices() []event.Device {
	return []event.Device{
		{Name: "S_kitchen", Attribute: event.Switch, Location: "kitchen"},
		{Name: "W_sink", Attribute: event.WaterMeter, Location: "kitchen"},
		{Name: "B_living", Attribute: event.BrightnessSensor, Location: "living"},
	}
}

func mustNew(t *testing.T, cfg Config) *Preprocessor {
	t.Helper()
	p, err := New(testDevices(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty inventory accepted")
	}
	dup := []event.Device{
		{Name: "a", Attribute: event.Switch},
		{Name: "a", Attribute: event.Switch},
	}
	if _, err := New(dup, Config{}); err == nil {
		t.Error("duplicate device accepted")
	}
	bad := []event.Device{{Name: "", Attribute: event.Switch}}
	if _, err := New(bad, Config{}); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestDeduplicationOfRepeatedReports(t *testing.T) {
	p := mustNew(t, Config{TauOverride: 1})
	log := event.Log{
		{Timestamp: t0, Device: "S_kitchen", Value: 1},
		{Timestamp: t0.Add(time.Second), Device: "S_kitchen", Value: 1}, // duplicate
		{Timestamp: t0.Add(2 * time.Second), Device: "S_kitchen", Value: 0},
		{Timestamp: t0.Add(3 * time.Second), Device: "S_kitchen", Value: 0}, // duplicate
		{Timestamp: t0.Add(4 * time.Second), Device: "S_kitchen", Value: 1},
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.DuplicatesDropped != 2 {
		t.Errorf("DuplicatesDropped = %d, want 2", res.Report.DuplicatesDropped)
	}
	if res.Series.Len() != 3 {
		t.Errorf("series length = %d, want 3", res.Series.Len())
	}
}

func TestResponsiveNumericThresholdsAtZero(t *testing.T) {
	p := mustNew(t, Config{TauOverride: 1})
	log := event.Log{
		{Timestamp: t0, Device: "W_sink", Value: 3.2},                      // Working
		{Timestamp: t0.Add(time.Second), Device: "W_sink", Value: 1.1},     // still Working -> dup
		{Timestamp: t0.Add(2 * time.Second), Device: "W_sink", Value: 0},   // Idle
		{Timestamp: t0.Add(3 * time.Second), Device: "W_sink", Value: 5.0}, // Working
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series.Len() != 3 {
		t.Fatalf("series length = %d, want 3 (one duplicate)", res.Series.Len())
	}
	idx, _ := p.Registry().Index("W_sink")
	wantStates := []int{1, 0, 1}
	for j, want := range wantStates {
		if got := res.Series.State(j + 1)[idx]; got != want {
			t.Errorf("state %d = %d, want %d", j+1, got, want)
		}
	}
}

func TestAmbientNumericJenksUnification(t *testing.T) {
	p := mustNew(t, Config{TauOverride: 1})
	log := event.Log{}
	// Alternate between a Low cluster (~50 lux) and a High cluster
	// (~500 lux) so dedup keeps the transitions.
	vals := []float64{48, 510, 52, 495, 50, 505, 47, 500}
	for i, v := range vals {
		log = append(log, event.Event{Timestamp: t0.Add(time.Duration(i) * time.Minute), Device: "B_living", Value: v})
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	thr, ok := p.Threshold("B_living")
	if !ok {
		t.Fatal("no threshold learned")
	}
	if thr < 52 || thr >= 495 {
		t.Errorf("threshold = %v, want in [52,495)", thr)
	}
	// The first Low reading matches the all-zeros initial state and is
	// deduplicated; the remaining 7 readings all flip the unified state.
	if res.Series.Len() != len(vals)-1 {
		t.Errorf("series length = %d, want %d", res.Series.Len(), len(vals)-1)
	}
	if got, err := p.UnifyValue("B_living", 999); err != nil || got != 1 {
		t.Errorf("UnifyValue(high) = %d,%v", got, err)
	}
	if got, err := p.UnifyValue("B_living", 1); err != nil || got != 0 {
		t.Errorf("UnifyValue(low) = %d,%v", got, err)
	}
}

func TestThreeSigmaOutlierFilter(t *testing.T) {
	p := mustNew(t, Config{TauOverride: 1})
	log := event.Log{}
	for i := 0; i < 40; i++ {
		v := 50.0
		if i%2 == 1 {
			v = 500
		}
		log = append(log, event.Event{Timestamp: t0.Add(time.Duration(i) * time.Minute), Device: "B_living", Value: v})
	}
	// One absurd reading far outside three sigma of the bimodal sample.
	log = append(log, event.Event{Timestamp: t0.Add(41 * time.Minute), Device: "B_living", Value: 1e6})
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OutliersDropped != 1 {
		t.Errorf("OutliersDropped = %d, want 1", res.Report.OutliersDropped)
	}
}

func TestKeepOutliersConfig(t *testing.T) {
	p := mustNew(t, Config{TauOverride: 1, KeepOutliers: true})
	log := event.Log{}
	for i := 0; i < 40; i++ {
		v := 50.0
		if i%2 == 1 {
			v = 500
		}
		log = append(log, event.Event{Timestamp: t0.Add(time.Duration(i) * time.Minute), Device: "B_living", Value: v})
	}
	log = append(log, event.Event{Timestamp: t0.Add(41 * time.Minute), Device: "B_living", Value: 1e6})
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OutliersDropped != 0 {
		t.Errorf("OutliersDropped = %d, want 0 with KeepOutliers", res.Report.OutliersDropped)
	}
}

func TestTauSelection(t *testing.T) {
	// 20-second average interval with d=60s gives τ=3.
	p := mustNew(t, Config{})
	log := event.Log{}
	state := 0.0
	for i := 0; i < 30; i++ {
		state = 1 - state
		log = append(log, event.Event{Timestamp: t0.Add(time.Duration(i) * 20 * time.Second), Device: "S_kitchen", Value: state})
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 3 {
		t.Errorf("Tau = %d, want 3", res.Tau)
	}
}

func TestTauClampedToTauMax(t *testing.T) {
	p := mustNew(t, Config{TauMax: 2})
	log := event.Log{}
	state := 0.0
	for i := 0; i < 30; i++ {
		state = 1 - state
		log = append(log, event.Event{Timestamp: t0.Add(time.Duration(i) * time.Second), Device: "S_kitchen", Value: state})
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau != 2 {
		t.Errorf("Tau = %d, want clamp at 2", res.Tau)
	}
}

func TestUnknownDeviceRejected(t *testing.T) {
	p := mustNew(t, Config{})
	log := event.Log{{Timestamp: t0, Device: "ghost", Value: 1}}
	if _, err := p.Process(log); err == nil {
		t.Error("event from unknown device accepted")
	}
	if _, err := p.UnifyValue("ghost", 1); err == nil {
		t.Error("UnifyValue for unknown device accepted")
	}
}

func TestAmbientUnifyBeforeProcessFails(t *testing.T) {
	p := mustNew(t, Config{})
	if _, err := p.UnifyValue("B_living", 10); err == nil {
		t.Error("ambient unify before Process accepted")
	}
}

func TestInitialStateRespected(t *testing.T) {
	p, err := New(testDevices(), Config{TauOverride: 1, InitialState: map[string]int{"S_kitchen": 1}})
	if err != nil {
		t.Fatal(err)
	}
	log := event.Log{
		{Timestamp: t0, Device: "S_kitchen", Value: 1}, // duplicate of initial
		{Timestamp: t0.Add(time.Second), Device: "S_kitchen", Value: 0},
	}
	res, err := p.Process(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.DuplicatesDropped != 1 {
		t.Errorf("DuplicatesDropped = %d, want 1 (matches initial)", res.Report.DuplicatesDropped)
	}
	idx, _ := p.Registry().Index("S_kitchen")
	if res.Series.State(0)[idx] != 1 {
		t.Error("initial state not respected")
	}
}

func TestEmptyLogRejected(t *testing.T) {
	p := mustNew(t, Config{})
	if _, err := p.Process(nil); err == nil {
		t.Error("empty log accepted")
	}
}

// Property: after preprocessing, consecutive states of any single device in
// the step sequence always alternate (dedup removes every same-state
// report), and every kept step is binary.
func TestDedupAlternationProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%80) + 2
		rng := rand.New(rand.NewSource(seed))
		p, err := New(testDevices(), Config{TauOverride: 1})
		if err != nil {
			return false
		}
		log := make(event.Log, 0, n)
		for i := 0; i < n; i++ {
			log = append(log, event.Event{
				Timestamp: t0.Add(time.Duration(i) * time.Second),
				Device:    "S_kitchen",
				Value:     float64(rng.Intn(2)),
			})
		}
		res, err := p.Process(log)
		if err != nil {
			// All-duplicate logs are legitimately rejected.
			return res == nil
		}
		prev := res.Series.State(0)[0]
		for j := 1; j <= res.Series.Len(); j++ {
			cur := res.Series.State(j)[0]
			if cur != 0 && cur != 1 {
				return false
			}
			if cur == prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
