// Package causaliot is an anomaly-detection library for smart homes and
// other IoT deployments, reproducing the system described in "IoT Anomaly
// Detection Via Device Interaction Graph" (DSN 2023).
//
// CausalIoT profiles normal device behaviour as a device interaction graph
// (DIG): a temporally extended causal graph whose edges are device
// interactions mined from logged device events with the TemporalPC
// algorithm, and whose conditional probability tables quantify how likely a
// device state is under its causes. At runtime, every incoming event is
// scored against the graph: an event that violates its interaction context
// is a contextual anomaly, and the chain of events that follows an
// unsolicited interaction execution is a collective anomaly.
//
// Basic use:
//
//	sys, err := causaliot.Train(devices, log, causaliot.Config{})
//	mon, err := sys.NewMonitor()
//	for ev := range events {
//	    det, err := mon.ObserveEvent(ev)
//	    if det.Alarm != nil { ... }
//	}
//
// To serve many independent homes concurrently, host their trained systems
// on a Hub (see NewHub): each home keeps a strictly ordered event stream
// behind a bounded queue while different homes are validated in parallel by
// a shared worker pool.
package causaliot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"github.com/causaliot/causaliot/internal/dig"
	"github.com/causaliot/causaliot/internal/event"
	"github.com/causaliot/causaliot/internal/monitor"
	"github.com/causaliot/causaliot/internal/pc"
	"github.com/causaliot/causaliot/internal/preprocess"
	"github.com/causaliot/causaliot/internal/stats"
	"github.com/causaliot/causaliot/internal/timeseries"
)

// DeviceType classifies a device's value type, mirroring the platform
// attribute classes of the paper's Table I.
type DeviceType int

// Device types.
const (
	// Switch is a binary actuator (ON/OFF).
	Switch DeviceType = iota + 1
	// Presence is a binary motion/occupancy sensor.
	Presence
	// Contact is a binary door/window sensor.
	Contact
	// Dimmer is a responsive numeric actuator (zero when off).
	Dimmer
	// WaterMeter is a responsive numeric flow sensor.
	WaterMeter
	// Power is a responsive numeric appliance-usage sensor.
	Power
	// Brightness is an ambient numeric luminosity sensor.
	Brightness
	// GenericBinary is any other ON/OFF state.
	GenericBinary
	// GenericResponsive is any other zero-when-idle numeric state.
	GenericResponsive
	// GenericAmbient is any other continuous environmental measurement.
	GenericAmbient
)

func (t DeviceType) attribute() (event.Attribute, error) {
	switch t {
	case Switch:
		return event.Switch, nil
	case Presence:
		return event.PresenceSensor, nil
	case Contact:
		return event.ContactSensor, nil
	case Dimmer:
		return event.Dimmer, nil
	case WaterMeter:
		return event.WaterMeter, nil
	case Power:
		return event.PowerSensor, nil
	case Brightness:
		return event.BrightnessSensor, nil
	case GenericBinary:
		return event.Attribute{Name: "generic-binary", Abbrev: "GB", Class: event.Binary, Description: "generic binary state"}, nil
	case GenericResponsive:
		return event.Attribute{Name: "generic-responsive", Abbrev: "GR", Class: event.ResponsiveNumeric, Description: "generic responsive numeric state"}, nil
	case GenericAmbient:
		return event.Attribute{Name: "generic-ambient", Abbrev: "GA", Class: event.AmbientNumeric, Description: "generic ambient numeric state"}, nil
	default:
		return event.Attribute{}, fmt.Errorf("causaliot: unknown device type %d", int(t))
	}
}

// Device describes one IoT device bound to the platform.
type Device struct {
	// Name uniquely identifies the device.
	Name string
	// Type is the device's value class.
	Type DeviceType
	// Location is the installation location (used for reporting only).
	Location string
}

// Event is a raw device state report.
type Event struct {
	Time   time.Time
	Device string
	Value  float64
	// Seq is an optional producer-assigned sequence number. Detection does
	// not interpret it; it is echoed back in TenantAlarm.Seq (and over the
	// network in wire Nack/Alarm frames) so producers can correlate alarms
	// and refusals with the events that caused them. Zero means unassigned.
	Seq uint64
}

// Config tunes training and detection. The zero value selects the defaults
// the paper's evaluation uses.
type Config struct {
	// Tau is the maximum time lag in event steps; 0 selects it
	// automatically as feedback-duration / average event interval
	// (paper §V-A).
	Tau int
	// MaxDuration is the feedback duration d for automatic τ selection.
	// Defaults to 60 s.
	MaxDuration time.Duration
	// Alpha is the significance threshold of the conditional-independence
	// tests. Defaults to 0.001.
	Alpha float64
	// MaxCondSize caps the conditioning-set size. Defaults to 3; 0 keeps
	// the default, negative values mean unbounded.
	MaxCondSize int
	// MinObsPerDOF is the G² small-sample heuristic. Defaults to 5.
	MinObsPerDOF int
	// MaxParents caps the causes kept per device. Defaults to 8.
	MaxParents int
	// EventAnchors switches the CI tests to event-anchored mode (an
	// ablation; see the pc package).
	EventAnchors bool
	// Smoothing is the CPT Laplace pseudo-count. Defaults to 0.01.
	Smoothing float64
	// Quantile is the score-threshold percentile over the logged events'
	// anomaly scores. Defaults to 99.
	Quantile float64
	// MinThreshold floors the calibrated threshold: on near-deterministic
	// training data the 99th-percentile score can degenerate to zero, and
	// an event should at least be less likely than its alternative before
	// it is called anomalous. Defaults to 0.5; negative disables.
	MinThreshold float64
	// KMax is the maximum anomaly-chain length tracked at runtime
	// (k-sequence detection, Algorithm 2). Defaults to 1 (contextual
	// detection only).
	KMax int
	// Kernel selects the counting substrate of the mining CI tests.
	// KernelBit (the default) packs the binary state columns into machine
	// words and counts contingency tables with popcount instructions;
	// KernelScalar forces the generic per-observation path. Both kernels
	// mine the identical graph.
	Kernel Kernel
}

// Kernel selects the CI-test counting kernel used while mining.
type Kernel int

const (
	// KernelBit counts contingency cells with the popcount kernel over
	// bit-packed binary state columns — the hardware-fast path for
	// skeleton construction, and the default.
	KernelBit Kernel = iota
	// KernelScalar forces the generic per-observation counting path,
	// kept for cross-checking the kernels and benchmarking the baseline.
	KernelScalar
)

func (k Kernel) internal() stats.Kernel {
	if k == KernelScalar {
		return stats.KernelScalar
	}
	return stats.KernelBit
}

func (c Config) withDefaults() Config {
	if c.MaxDuration <= 0 {
		c.MaxDuration = preprocess.DefaultMaxDuration
	}
	if c.Alpha <= 0 {
		c.Alpha = pc.DefaultAlpha
	}
	if c.MaxCondSize == 0 {
		c.MaxCondSize = 3
	} else if c.MaxCondSize < 0 {
		c.MaxCondSize = 0
	}
	if c.MinObsPerDOF == 0 {
		c.MinObsPerDOF = 5
	}
	if c.MaxParents == 0 {
		c.MaxParents = 8
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.01
	}
	if c.Quantile <= 0 {
		c.Quantile = monitor.DefaultQuantile
	}
	if c.MinThreshold == 0 {
		c.MinThreshold = 0.5
	} else if c.MinThreshold < 0 {
		c.MinThreshold = 0
	}
	if c.KMax <= 0 {
		c.KMax = 1
	}
	return c
}

// Interaction is a mined device interaction: operating Cause directly
// affects Outcome after Lag events.
type Interaction struct {
	Cause   string
	Outcome string
	Lag     int
}

// System is a trained CausalIoT instance: the mined device interaction
// graph plus the calibrated score threshold.
type System struct {
	cfg       Config
	devices   []event.Device
	pre       *preprocess.Preprocessor
	graph     *dig.Graph
	threshold float64
	initial   timeseries.State
	// compiled is the frozen serving form of graph (flattened parents +
	// dense score tables), built once and shared read-only by every
	// Monitor of this system.
	compiled *dig.Compiled
	// causeLabels[dev][lag-1] is the pre-rendered "name@t-lag" context key
	// for lag ∈ [1, Tau], so alarm conversion never formats strings on the
	// delivery path.
	causeLabels [][]string
	// unify is the index-keyed compiled form of the preprocessor's
	// unification rules, sparing ObserveEvent a name-keyed map lookup per
	// event.
	unify *preprocess.Unifier
	// nameIdx is the compiled device-name resolver, replacing the
	// registry's string-hashing map lookup on the per-event path.
	nameIdx *timeseries.NameIndex
	// fp is the graph's content address, computed at compile time. It keys
	// the process-wide compiled-model cache so same-model systems share one
	// Compiled, and it is embedded in checkpoint envelopes to pin model
	// identity across a resume.
	fp dig.Fingerprint
	// graphShared marks graph as the cache-interned instance adopted from
	// another system; it must never be mutated in place (Extend takes a
	// private copy first via ensurePrivateGraph).
	graphShared bool
}

// servingAux bundles the derived serving tables that are pure functions of
// the model content plus the preprocessing configuration — shareable across
// all systems with the same fingerprint and aux key, and by far the largest
// per-tenant state after the compiled tables themselves (the pre-rendered
// cause labels alone dwarf the detector window).
type servingAux struct {
	pre         *preprocess.Preprocessor
	causeLabels [][]string
	unify       *preprocess.Unifier
	nameIdx     *timeseries.NameIndex
}

// auxKey hashes the serving configuration that the model fingerprint does
// not cover: unification thresholds and device attribute metadata (plus the
// config knobs that shape the preprocessor). Two systems share serving
// tables only when both the fingerprint and this key match.
func (s *System) auxKey() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(str string) {
		writeU64(uint64(len(str)))
		h.Write([]byte(str))
	}
	writeU64(uint64(s.cfg.MaxDuration))
	writeU64(uint64(s.cfg.Tau))
	for _, d := range s.devices {
		writeStr(d.Name)
		writeStr(d.Attribute.Name)
		writeU64(uint64(d.Attribute.Class))
		writeStr(d.Location)
	}
	thresholds := s.pre.Thresholds()
	names := make([]string, 0, len(thresholds))
	for name := range thresholds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writeStr(name)
		writeU64(math.Float64bits(thresholds[name]))
	}
	return h.Sum64()
}

// ensurePrivateGraph replaces a cache-shared graph with a private mutable
// copy (same structure, same counts) so in-place refits (Extend) can never
// corrupt other tenants of the interned model.
func (s *System) ensurePrivateGraph() error {
	if !s.graphShared {
		return nil
	}
	g := s.graph.CloneStructure()
	if err := g.Merge(s.graph); err != nil {
		return fmt.Errorf("causaliot: unshare graph: %w", err)
	}
	s.graph = g
	s.graphShared = false
	return nil
}

// compile freezes the current graph into its serving form and pre-renders
// the per-node cause label strings. It must be re-run whenever the graph's
// CPTs change in place (Extend). When the process-wide model cache already
// holds a Compiled with this graph's content address, the system adopts the
// interned instance (and, when the serving configuration matches, the
// shared serving tables) instead of compiling a private duplicate; the
// freshly fitted graph is dropped for the shared one, marked read-only via
// graphShared. compile only peeks at the cache — residency references are
// taken per Monitor (NewMonitor/Swap) and released on Monitor.Close, so a
// transient System (lifecycle refresh) can be discarded without leaking.
func (s *System) compile() error {
	fp := s.graph.Fingerprint()
	if comp := dig.CacheLookup(fp); comp != nil {
		s.compiled = comp
		s.graph = comp.Graph()
		s.graphShared = true
		s.fp = fp
		if aux, ok := dig.CacheAux(fp, s.auxKey()).(*servingAux); ok {
			s.pre = aux.pre
			s.causeLabels = aux.causeLabels
			s.unify = aux.unify
			s.nameIdx = aux.nameIdx
			return nil
		}
		s.buildServingTables()
		return nil
	}
	comp, err := dig.Compile(s.graph)
	if err != nil {
		return fmt.Errorf("causaliot: compile graph: %w", err)
	}
	s.compiled = comp
	s.graphShared = false
	s.fp = fp
	s.buildServingTables()
	return nil
}

// buildServingTables derives the per-model serving state (cause labels,
// compiled unifier, name index) from the current graph and preprocessor.
func (s *System) buildServingTables() {
	reg := s.graph.Registry
	labels := make([][]string, reg.Len())
	for dev := range labels {
		perLag := make([]string, s.graph.Tau)
		for lag := 1; lag <= s.graph.Tau; lag++ {
			perLag[lag-1] = fmt.Sprintf("%s@t-%d", reg.Name(dev), lag)
		}
		labels[dev] = perLag
	}
	s.causeLabels = labels
	s.unify = s.pre.CompileUnifier()
	s.nameIdx = reg.CompileIndex()
}

// ModelFingerprint returns the hex content address of the served model;
// same string ⇒ bit-identical compiled scoring tables.
func (s *System) ModelFingerprint() string { return s.fp.String() }

// causeLabel returns the "name@t-lag" context key for a cause node, served
// from the pre-rendered table; lags outside the current graph's window
// (possible for chain events recorded before a hot-swap to a smaller Tau)
// fall back to formatting.
func (s *System) causeLabel(dev, lag int) string {
	if dev >= 0 && dev < len(s.causeLabels) && lag >= 1 && lag <= len(s.causeLabels[dev]) {
		return s.causeLabels[dev][lag-1]
	}
	return fmt.Sprintf("%s@t-%d", s.graph.Registry.Name(dev), lag)
}

// Train mines the device interaction graph from a training log of raw
// device events and calibrates the anomaly-score threshold. The log should
// contain normal (anomaly-free or nearly so) behaviour, per the paper's
// semi-supervised setting.
func Train(devices []Device, log []Event, cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if len(devices) == 0 {
		return nil, errors.New("causaliot: no devices")
	}
	if len(log) == 0 {
		return nil, errors.New("causaliot: empty training log")
	}
	internalDevices := make([]event.Device, len(devices))
	for i, d := range devices {
		attr, err := d.Type.attribute()
		if err != nil {
			return nil, err
		}
		internalDevices[i] = event.Device{Name: d.Name, Attribute: attr, Location: d.Location}
	}
	pre, err := preprocess.New(internalDevices, preprocess.Config{
		MaxDuration: cfg.MaxDuration,
		TauOverride: cfg.Tau,
	})
	if err != nil {
		return nil, err
	}
	internalLog := make(event.Log, len(log))
	for i, e := range log {
		internalLog[i] = event.Event{Timestamp: e.Time, Device: e.Device, Value: e.Value}
	}
	res, err := pre.Process(internalLog)
	if err != nil {
		return nil, fmt.Errorf("causaliot: preprocess: %w", err)
	}
	miner := pc.NewMiner(pc.Config{
		Alpha:        cfg.Alpha,
		MaxCondSize:  cfg.MaxCondSize,
		MinObsPerDOF: cfg.MinObsPerDOF,
		MaxParents:   cfg.MaxParents,
		EventAnchors: cfg.EventAnchors,
		Kernel:       cfg.Kernel.internal(),
	})
	graph, _, _, err := miner.Mine(res.Series, res.Tau, cfg.Smoothing)
	if err != nil {
		return nil, fmt.Errorf("causaliot: mine: %w", err)
	}
	threshold, err := monitor.Threshold(graph, res.Series, cfg.Quantile)
	if err != nil {
		return nil, fmt.Errorf("causaliot: threshold: %w", err)
	}
	if threshold < cfg.MinThreshold {
		threshold = cfg.MinThreshold
	}
	sys := &System{
		cfg:       cfg,
		devices:   internalDevices,
		pre:       pre,
		graph:     graph,
		threshold: threshold,
		initial:   res.Series.State(res.Series.Len()).Clone(),
	}
	if err := sys.compile(); err != nil {
		return nil, err
	}
	return sys, nil
}

// Tau returns the maximum time lag the system was trained with.
func (s *System) Tau() int { return s.graph.Tau }

// Threshold returns the calibrated anomaly-score threshold c.
func (s *System) Threshold() float64 { return s.threshold }

// Interactions returns every mined device interaction, sorted.
func (s *System) Interactions() []Interaction {
	reg := s.graph.Registry
	var out []Interaction
	for _, in := range s.graph.Interactions() {
		out = append(out, Interaction{
			Cause:   reg.Name(in.Cause),
			Outcome: reg.Name(in.Outcome),
			Lag:     in.Lag,
		})
	}
	return out
}

// GraphDOT renders the lag-collapsed device interaction graph in Graphviz
// DOT syntax.
func (s *System) GraphDOT() string { return s.graph.DOT() }

// Likelihood returns P(device = state | context), where context maps cause
// device names to their binary states; missing causes default to 0.
func (s *System) Likelihood(device string, state int, context map[string]int) (float64, error) {
	reg := s.graph.Registry
	idx, ok := reg.Index(device)
	if !ok {
		return 0, fmt.Errorf("causaliot: unknown device %q", device)
	}
	causes := s.graph.Parents(idx)
	values := make([]int, len(causes))
	for i, c := range causes {
		values[i] = context[reg.Name(c.Device)]
	}
	return s.graph.Likelihood(idx, state, values)
}

// AnomalousEvent is one member of a reported anomaly chain.
type AnomalousEvent struct {
	// Device and State describe the offending event.
	Device string
	State  int
	// Score is the anomaly score f(e, G, 𝒢) ∈ [0,1].
	Score float64
	// Context maps each cause (rendered as "device@t-lag") to its state
	// at the event, the information the paper reports for anomaly
	// interpretation and root-cause localization.
	Context map[string]int
}

// Alarm reports a detected anomaly: Events[0] is the contextual anomaly and
// any following entries are the collective anomaly chain that executed
// under the polluted context.
type Alarm struct {
	Events []AnomalousEvent
	// Abrupt marks chains terminated early by another high-score event.
	Abrupt bool
}

// Collective reports whether the alarm includes a collective anomaly chain.
func (a *Alarm) Collective() bool { return len(a.Events) > 1 }

// Sentinel errors returned while observing a runtime stream. Match them
// with errors.Is to tell skippable events from fatal ones: an event from a
// device outside the inventory or a non-finite sensor glitch can be dropped
// and the stream resumed, while any other error signals misconfiguration.
var (
	// ErrUnknownDevice marks an event from a device the system was not
	// trained on.
	ErrUnknownDevice = errors.New("causaliot: unknown device")
	// ErrValueOutOfRange marks a reading (NaN, ±Inf) no unification rule
	// can classify.
	ErrValueOutOfRange = errors.New("causaliot: value out of range")
)

// Detection is the outcome of observing one runtime event.
type Detection struct {
	// Alarm is non-nil when the event completed (or abruptly terminated)
	// an anomaly chain.
	Alarm *Alarm
	// Score is the event's anomaly score f(e, G, 𝒢) ∈ [0,1]; duplicated
	// state reports score 0.
	Score float64
	// State is the unified binary device state the event mapped to.
	State int
	// Duplicate reports that the event repeated the tracked device state
	// and was skipped, mirroring the preprocessor's sanitation.
	Duplicate bool
}

// Monitor validates a runtime event stream against the trained system.
// A Monitor is not safe for concurrent use; to serve many streams in
// parallel, host one monitor per home on a Hub.
type Monitor struct {
	sys *System
	det *monitor.Detector
	// ref marks a reference-path monitor: value unification goes through
	// the original name-keyed UnifyValue so the baseline stays byte-for-
	// byte pre-change.
	ref bool
	// observed counts every ObserveEvent call, including ones that failed
	// with a skippable error and never reached the detector. It is the
	// stream-position a resumed process skips to when replaying a source
	// log after restoring a checkpoint.
	observed int
	// lc is the online model-lifecycle state (drift evidence, sliding refit
	// log, refresh signalling); nil unless EnableAdaptive was called.
	lc *adaptState
	// fpRef is the fingerprint this monitor holds a model-cache reference
	// on (zero for reference monitors and cache-disabled acquires). It is
	// tracked separately from m.sys.fp so error paths in Swap release the
	// right entry.
	fpRef dig.Fingerprint
	// closed marks the cache reference as released; further cache
	// operations are skipped.
	closed bool
}

// NewMonitor starts runtime monitoring from the state at the end of the
// training log. Monitors score events on the zero-allocation compiled path,
// sharing the system's compiled graph read-only. The monitor takes a
// reference on the process-wide model cache (interning the model on first
// use, joining the shared instance otherwise); release it with Close when
// the monitor is permanently done — the Hub and Fleet do this on
// Deregister/CloseWithin for monitors they host.
func (s *System) NewMonitor() (*Monitor, error) {
	comp := dig.CacheAcquire(s.fp, s.compiled)
	det, err := monitor.NewDetectorFromCompiled(comp, s.threshold, s.cfg.KMax, s.initial)
	if err != nil {
		dig.CacheRelease(s.fp)
		return nil, err
	}
	dig.CacheStoreAux(s.fp, s.auxKey(), &servingAux{
		pre:         s.pre,
		causeLabels: s.causeLabels,
		unify:       s.unify,
		nameIdx:     s.nameIdx,
	})
	return &Monitor{sys: s, det: det, fpRef: s.fp}, nil
}

// Close releases the monitor's reference on the shared compiled-model
// cache. It is idempotent and does not invalidate in-flight reads (the
// compiled tables stay reachable through the system), but a closed monitor
// no longer pins cache residency and must not be handed new events or
// swapped. Hosts (Hub/Fleet) close monitors they registered; standalone
// monitors should be closed by their creator when retired.
func (m *Monitor) Close() {
	if m.closed {
		return
	}
	m.closed = true
	dig.CacheRelease(m.fpRef)
	m.fpRef = dig.Fingerprint{}
}

// NewReferenceMonitor starts runtime monitoring on the original
// clone-window, error-checked scoring path. It exists as the differential
// and benchmarking baseline the compiled path is held bit-identical to;
// production serving should use NewMonitor.
func (s *System) NewReferenceMonitor() (*Monitor, error) {
	det, err := monitor.NewReferenceDetector(s.graph, s.threshold, s.cfg.KMax, s.initial)
	if err != nil {
		return nil, err
	}
	return &Monitor{sys: s, det: det, ref: true}, nil
}

// ObserveEvent ingests one raw device event and reports what the detector
// did with it. Errors matching ErrUnknownDevice or ErrValueOutOfRange are
// skippable: the detector state is untouched and the stream can resume with
// the next event.
func (m *Monitor) ObserveEvent(e Event) (Detection, error) {
	m.observed++
	var idx int
	var ok bool
	var state int
	var err error
	if m.ref {
		// Reference path: the pre-change map lookup and name-keyed
		// unification, kept byte-for-byte as the benchmark baseline.
		idx, ok = m.sys.graph.Registry.Index(e.Device)
		if !ok {
			return Detection{}, fmt.Errorf("%w %q", ErrUnknownDevice, e.Device)
		}
		state, err = m.sys.pre.UnifyValue(e.Device, e.Value)
	} else {
		idx, ok = m.sys.nameIdx.Index(e.Device)
		if !ok {
			return Detection{}, fmt.Errorf("%w %q", ErrUnknownDevice, e.Device)
		}
		state, err = m.sys.unify.Unify(idx, e.Value)
	}
	if err != nil {
		switch {
		case errors.Is(err, preprocess.ErrValueOutOfRange):
			return Detection{}, fmt.Errorf("%w: device %q reported %v", ErrValueOutOfRange, e.Device, e.Value)
		case errors.Is(err, preprocess.ErrUnknownDevice):
			return Detection{}, fmt.Errorf("%w %q", ErrUnknownDevice, e.Device)
		}
		return Detection{}, err
	}
	step := timeseries.Step{Device: idx, Value: state, Time: e.Time}
	res, err := m.det.ProcessStep(step)
	if err != nil {
		return Detection{}, err
	}
	if m.lc != nil && !res.Duplicate {
		m.observeAccepted(step)
	}
	return Detection{
		Alarm:     m.convertAlarm(res.Alarm),
		Score:     res.Score,
		State:     state,
		Duplicate: res.Duplicate,
	}, nil
}

// ObserveBatch ingests a slice of events in order, amortizing per-call
// overhead. It stops at the first error, returning the detections made so
// far together with the error; callers distinguishing skippable errors
// (ErrUnknownDevice, ErrValueOutOfRange) can resume with the remaining
// events.
func (m *Monitor) ObserveBatch(events []Event) ([]Detection, error) {
	out := make([]Detection, 0, len(events))
	for i, e := range events {
		det, err := m.ObserveEvent(e)
		if err != nil {
			return out, fmt.Errorf("event %d: %w", i, err)
		}
		out = append(out, det)
	}
	return out, nil
}

// Observe ingests one raw device event, returning a non-nil Alarm when one
// is raised and the event's anomaly score (duplicated state reports score
// zero and never alarm).
//
// Deprecated: use ObserveEvent(e Event) (Detection, error) — the Detection
// carries the same Alarm and Score plus the unified state and the
// duplicate verdict. The wrapper will be removed in v1.0; no internal
// callers remain.
func (m *Monitor) Observe(e Event) (*Alarm, float64, error) {
	det, err := m.ObserveEvent(e)
	return det.Alarm, det.Score, err
}

// Swap atomically adopts a retrained (or Extend-ed and re-saved) system
// between events: the monitor keeps its phantom state window and any
// partially tracked k-sequence chain while scoring subsequent events
// against the new graph, threshold, and KMax. The new system must cover
// the same device inventory. Swap is not safe for concurrent use with
// ObserveEvent; a Hub serializes the two (see Hub.Swap).
func (m *Monitor) Swap(sys *System) error {
	if sys == nil {
		return errors.New("causaliot: swap to nil system")
	}
	// Acquire the incoming model's cache entry before touching the
	// detector, transfer the reference only on success, and release the
	// outgoing model after — so no window exists where either entry's
	// residency is unpinned. Reference and closed monitors keep the
	// pre-cache behaviour (no references held).
	useCache := !m.ref && !m.closed
	comp := sys.compiled
	if useCache {
		comp = dig.CacheAcquire(sys.fp, sys.compiled)
	}
	if err := m.det.SwapCompiled(comp, sys.threshold, sys.cfg.KMax); err != nil {
		if useCache {
			dig.CacheRelease(sys.fp)
		}
		return err
	}
	if useCache {
		dig.CacheRelease(m.fpRef)
		m.fpRef = sys.fp
	}
	m.sys = sys
	if m.lc != nil {
		// Drift evidence gathered against the old model's parent layout is
		// meaningless under the new one: rebind resets the accumulator and
		// clears any parked drift verdict.
		if err := m.lc.rebind(m); err != nil {
			return err
		}
	}
	return nil
}

// Observed returns the number of events this monitor has been handed via
// ObserveEvent (counting events skipped with ErrUnknownDevice or
// ErrValueOutOfRange). After restoring a checkpoint, replay the source log
// from this position to resume the stream exactly where it was cut.
func (m *Monitor) Observed() int { return m.observed }

// Pending returns the number of events in the partially tracked anomaly
// chain (0 when the monitor is not mid-chain).
func (m *Monitor) Pending() int { return m.det.Pending() }

// Flush reports any partially tracked anomaly chain (e.g. at shutdown).
func (m *Monitor) Flush() *Alarm { return m.convertAlarm(m.det.Flush()) }

func (m *Monitor) convertAlarm(alarm *monitor.Alarm) *Alarm {
	if alarm == nil {
		return nil
	}
	reg := m.sys.graph.Registry
	out := &Alarm{Abrupt: alarm.Abrupt}
	for _, ev := range alarm.Events {
		ctx := make(map[string]int, len(ev.Causes))
		for i, c := range ev.Causes {
			ctx[m.sys.causeLabel(c.Device, c.Lag)] = ev.CauseValues[i]
		}
		out.Events = append(out.Events, AnomalousEvent{
			Device:  reg.Name(ev.Step.Device),
			State:   ev.Step.Value,
			Score:   ev.Score,
			Context: ctx,
		})
	}
	return out
}
