// Package platform implements the centralized IoT platform the paper
// assumes (§II-A): a hub that binds devices, tracks their latest raw and
// unified states from incoming device events, keeps the event log the
// Interaction Miner consumes, executes user-installed automation rules with
// chained execution, and fans events out to subscribers (e.g. a runtime
// anomaly detector).
package platform

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/causaliot/causaliot/internal/automation"
	"github.com/causaliot/causaliot/internal/event"
)

// DefaultActionDelay is the simulated latency between a triggering event and
// the platform-issued action event.
const DefaultActionDelay = 500 * time.Millisecond

// DefaultMaxChainDepth caps recursive automation execution so a mis-
// configured rule cycle cannot wedge the hub.
const DefaultMaxChainDepth = 8

// UnifyFunc converts a raw device value into the unified binary state used
// for rule triggering.
type UnifyFunc func(dev event.Device, value float64) int

// DefaultUnify treats binary and responsive-numeric values as
// zero/non-zero; ambient values cannot be unified without a learned
// threshold and default to Low.
func DefaultUnify(dev event.Device, value float64) int {
	switch dev.Attribute.Class {
	case event.AmbientNumeric:
		return 0
	default:
		if value != 0 {
			return 1
		}
		return 0
	}
}

// Config tunes the hub.
type Config struct {
	// ActionDelay is the latency of platform-issued action events.
	// Defaults to DefaultActionDelay.
	ActionDelay time.Duration
	// MaxChainDepth caps chained automation execution. Defaults to
	// DefaultMaxChainDepth.
	MaxChainDepth int
	// Unify converts raw values to binary rule-trigger states. Defaults
	// to DefaultUnify.
	Unify UnifyFunc
}

func (c Config) withDefaults() Config {
	if c.ActionDelay <= 0 {
		c.ActionDelay = DefaultActionDelay
	}
	if c.MaxChainDepth <= 0 {
		c.MaxChainDepth = DefaultMaxChainDepth
	}
	if c.Unify == nil {
		c.Unify = DefaultUnify
	}
	return c
}

// Hub is the IoT platform. It is safe for concurrent use.
type Hub struct {
	cfg    Config
	engine *automation.Engine

	mu      sync.Mutex
	devices map[string]event.Device
	state   map[string]float64
	log     event.Log
	subs    []func(event.Event)
}

// NewHub binds the devices and installs the automation engine (which may be
// empty but not nil-checked away: pass an engine built from zero rules for a
// rule-free home).
func NewHub(devices []event.Device, engine *automation.Engine, cfg Config) (*Hub, error) {
	if len(devices) == 0 {
		return nil, errors.New("platform: no devices")
	}
	if engine == nil {
		return nil, errors.New("platform: nil automation engine")
	}
	h := &Hub{
		cfg:     cfg.withDefaults(),
		engine:  engine,
		devices: make(map[string]event.Device, len(devices)),
		state:   make(map[string]float64, len(devices)),
	}
	for _, d := range devices {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := h.devices[d.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate device %q", d.Name)
		}
		h.devices[d.Name] = d
	}
	// Every rule must reference bound devices and actuate an actuatable
	// attribute class.
	for _, r := range engine.Rules() {
		if _, ok := h.devices[r.TriggerDev]; !ok {
			return nil, fmt.Errorf("platform: rule %s triggers on unbound device %q", r.ID, r.TriggerDev)
		}
		action, ok := h.devices[r.ActionDev]
		if !ok {
			return nil, fmt.Errorf("platform: rule %s actuates unbound device %q", r.ID, r.ActionDev)
		}
		if action.Attribute.Class == event.AmbientNumeric {
			return nil, fmt.Errorf("platform: rule %s actuates ambient sensor %q", r.ID, r.ActionDev)
		}
	}
	return h, nil
}

// Subscribe registers a callback invoked (outside the hub lock, in order)
// for every accepted event, including automation-issued ones.
func (h *Hub) Subscribe(fn func(event.Event)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs = append(h.subs, fn)
}

// Devices returns the bound devices keyed by name (a copy).
func (h *Hub) Devices() map[string]event.Device {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]event.Device, len(h.devices))
	for k, v := range h.devices {
		out[k] = v
	}
	return out
}

// RawState returns the latest raw value reported by the device.
func (h *Hub) RawState(name string) (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	v, ok := h.state[name]
	return v, ok
}

// BinaryState returns the unified binary state of the device.
func (h *Hub) BinaryState(name string) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dev, ok := h.devices[name]
	if !ok {
		return 0, fmt.Errorf("platform: unknown device %q", name)
	}
	return h.cfg.Unify(dev, h.state[name]), nil
}

// Log returns a copy of the collected event log.
func (h *Hub) Log() event.Log {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(event.Log, len(h.log))
	copy(out, h.log)
	return out
}

// EventCount returns the number of logged events.
func (h *Hub) EventCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.log)
}

// actionRawValue picks the raw value an automation action writes for the
// desired binary state.
func actionRawValue(dev event.Device, binary int) float64 {
	if binary == 0 {
		return 0
	}
	switch dev.Attribute.Class {
	case event.ResponsiveNumeric:
		return 50 // nominal in-use reading (e.g. watts)
	default:
		return 1
	}
}

// Ingest accepts a device event, updates the tracked state, logs it, and
// executes any triggered automation rules. It returns the full cascade in
// execution order: the ingested event first, then every automation-issued
// event (chained rules recurse up to MaxChainDepth).
func (h *Hub) Ingest(e event.Event) ([]event.Event, error) {
	h.mu.Lock()
	cascade, err := h.ingestLocked(e, 0)
	var subs []func(event.Event)
	if err == nil && len(h.subs) > 0 {
		subs = make([]func(event.Event), len(h.subs))
		copy(subs, h.subs)
	}
	h.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for _, ev := range cascade {
		for _, fn := range subs {
			fn(ev)
		}
	}
	return cascade, nil
}

func (h *Hub) ingestLocked(e event.Event, depth int) ([]event.Event, error) {
	dev, ok := h.devices[e.Device]
	if !ok {
		return nil, fmt.Errorf("platform: event from unbound device %q", e.Device)
	}
	if e.Location == "" {
		e.Location = dev.Location
	}
	h.state[e.Device] = e.Value
	h.log = append(h.log, e)
	cascade := []event.Event{e}

	if depth >= h.cfg.MaxChainDepth {
		return cascade, nil
	}
	binary := h.cfg.Unify(dev, e.Value)
	current := func(name string) int {
		d, ok := h.devices[name]
		if !ok {
			return 0
		}
		return h.cfg.Unify(d, h.state[name])
	}
	for _, act := range h.engine.Actions(e.Device, binary, current) {
		target := h.devices[act.Device]
		actionEvent := event.Event{
			Timestamp: e.Timestamp.Add(h.cfg.ActionDelay),
			Device:    act.Device,
			Location:  target.Location,
			Value:     actionRawValue(target, act.Value),
		}
		sub, err := h.ingestLocked(actionEvent, depth+1)
		if err != nil {
			return nil, err
		}
		cascade = append(cascade, sub...)
	}
	return cascade, nil
}
