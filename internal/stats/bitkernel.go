package stats

import (
	"fmt"
	"math/bits"
)

// Kernel selects the counting substrate of the conditional-independence
// tests. The device states TemporalPC mines over are binary, so the
// contingency cells N(x,y,z) a test needs can be counted with popcount
// instructions over bit-packed columns instead of one observation at a
// time — the skeleton-construction hot path per the paper's §V-D
// complexity analysis.
type Kernel int

const (
	// KernelBit, the default, counts contingency cells with the
	// bit-packed popcount kernel whenever every sample is binary, the
	// conditioning set is small, and the tester implements BitCITester;
	// other tests fall back to the scalar path. Both kernels produce
	// bit-identical statistics.
	KernelBit Kernel = iota
	// KernelScalar forces the generic per-observation counting path,
	// for cross-checking the kernels or benchmarking the baseline.
	KernelScalar
)

// String names the kernel for logs and flags.
func (k Kernel) String() string {
	switch k {
	case KernelBit:
		return "bit"
	case KernelScalar:
		return "scalar"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// BitSample is a binary sample packed 64 observations per machine word:
// observation i lives at bit i%64 of word i/64. Padding bits beyond the
// observation count are always zero. It is the input of the popcount
// counting kernel; build one with PackSample.
type BitSample struct {
	words []uint64
	n     int
}

// PackSample packs a binary sample (arity 2, every value 0 or 1) into a
// BitSample. Non-binary samples are rejected.
func PackSample(s Sample) (BitSample, error) {
	if s.Arity != 2 {
		return BitSample{}, fmt.Errorf("stats: cannot bit-pack sample with arity %d", s.Arity)
	}
	words := make([]uint64, (len(s.Values)+63)/64)
	for i, v := range s.Values {
		switch v {
		case 0:
		case 1:
			words[i/64] |= 1 << (uint(i) % 64)
		default:
			return BitSample{}, fmt.Errorf("stats: cannot bit-pack value %d at row %d", v, i)
		}
	}
	return BitSample{words: words, n: len(s.Values)}, nil
}

// Len returns the number of observations.
func (b BitSample) Len() int { return b.n }

// Bit returns observation i (0 or 1).
func (b BitSample) Bit(i int) int {
	return int(b.words[i/64] >> (uint(i) % 64) & 1)
}

// Ones returns the number of observations equal to 1.
func (b BitSample) Ones() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// BitCITester is a CITester with a fast path over bit-packed binary
// samples. TestBits must return exactly what Test would return on the
// corresponding unpacked samples — same statistic, DOF, p-value, and
// reliability verdict — so callers may route any eligible test through
// either entry point.
type BitCITester interface {
	CITester
	TestBits(x, y BitSample, zs []BitSample) (CIResult, error)
}

var (
	_ BitCITester = GSquareTester{}
	_ BitCITester = PearsonChiSquareTester{}
)

// bitPrologue mirrors ciPrologue for bit-packed samples: every variable is
// binary, so ∏|Z_i| = 2^len(zs) and dof = (2−1)(2−1)·2^len(zs).
func bitPrologue(x, y BitSample, zs []BitSample) (n, zCard, dof int, err error) {
	n = x.n
	if y.n != n {
		return 0, 0, 0, ErrSampleMismatch
	}
	zCard = 1
	for _, z := range zs {
		if z.n != n {
			return 0, 0, 0, ErrSampleMismatch
		}
		if 2 > maxZCard/zCard {
			return 0, 0, 0, ErrCardinalityOverflow
		}
		zCard *= 2
	}
	if n == 0 {
		return 0, 0, 0, ErrEmpty
	}
	return n, zCard, zCard, nil
}

// bitJointCounts computes the stratified contingency table N(x,y,z) over
// bit-packed columns in the same [z][x*2+y] layout countJoint produces.
// For each of the 2^l conditioning strata it builds the stratum mask by
// AND-ing the (possibly complemented) conditioning words and derives all
// four cells from popcounts of mask∧x∧y, mask∧x, mask∧y, and mask — four
// OnesCount64 per word and stratum, versus one table update per
// observation on the scalar path.
func bitJointCounts(x, y BitSample, zs []BitSample, zCard int) []float64 {
	words := len(x.words)
	l := len(zs)
	joint := make([]float64, zCard*4)
	// Padding bits beyond n are zero in every packed word, but the
	// complement of a conditioning word sets them; the final word's mask
	// keeps them out of the counts.
	last := ^uint64(0)
	if r := x.n % 64; r != 0 {
		last = 1<<uint(r) - 1
	}
	for s := 0; s < zCard; s++ {
		var n11, nx1, ny1, nz int
		for w := 0; w < words; w++ {
			mask := ^uint64(0)
			if w == words-1 {
				mask = last
			}
			for k := 0; k < l; k++ {
				zw := zs[k].words[w]
				// Stratum index s encodes z_0 as its most
				// significant bit, matching the scalar layout
				// zIdx = Σ zIdx·2 + z_k.
				if s>>(uint(l-1-k))&1 == 0 {
					zw = ^zw
				}
				mask &= zw
			}
			xw := x.words[w] & mask
			yw := y.words[w] & mask
			n11 += bits.OnesCount64(xw & yw)
			nx1 += bits.OnesCount64(xw)
			ny1 += bits.OnesCount64(yw)
			nz += bits.OnesCount64(mask)
		}
		joint[s*4+0] = float64(nz - nx1 - ny1 + n11) // x=0, y=0
		joint[s*4+1] = float64(ny1 - n11)            // x=0, y=1
		joint[s*4+2] = float64(nx1 - n11)            // x=1, y=0
		joint[s*4+3] = float64(n11)                  // x=1, y=1
	}
	return joint
}

// TestBits is the popcount fast path of Test: identical statistic, DOF,
// p-value, and reliability over bit-packed binary samples.
func (t GSquareTester) TestBits(x, y BitSample, zs []BitSample) (CIResult, error) {
	n, zCard, dof, err := bitPrologue(x, y, zs)
	if err != nil {
		return CIResult{}, err
	}
	res := CIResult{DOF: dof, Reliable: true}
	if t.MinObsPerDOF > 0 && n < t.MinObsPerDOF*dof {
		res.Reliable = false
		res.PValue = 1
		return res, nil
	}
	joint := bitJointCounts(x, y, zs, zCard)
	res.Statistic = gsquareStatistic(joint, 2, 2, zCard)
	res.PValue = ChiSquareSurvival(res.Statistic, dof)
	return res, nil
}

// TestBits is the popcount fast path of Test: identical statistic, DOF,
// p-value, and reliability over bit-packed binary samples.
func (t PearsonChiSquareTester) TestBits(x, y BitSample, zs []BitSample) (CIResult, error) {
	n, zCard, dof, err := bitPrologue(x, y, zs)
	if err != nil {
		return CIResult{}, err
	}
	res := CIResult{DOF: dof, Reliable: true}
	if t.MinObsPerDOF > 0 && n < t.MinObsPerDOF*dof {
		res.Reliable = false
		res.PValue = 1
		return res, nil
	}
	joint := bitJointCounts(x, y, zs, zCard)
	res.Statistic = pearsonStatistic(joint, 2, 2, zCard)
	res.PValue = ChiSquareSurvival(res.Statistic, dof)
	return res, nil
}
