package automation

import (
	"testing"
)

func testRules() []Rule {
	return []Rule{
		{ID: "R1", TriggerDev: "PE_living", TriggerVal: 1, ActionDev: "P_dishwasher", ActionVal: 1},
		{ID: "R3", TriggerDev: "P_heater", TriggerVal: 1, ActionDev: "S_player", ActionVal: 1},
		{ID: "R6", TriggerDev: "S_player", TriggerVal: 0, ActionDev: "S_curtain", ActionVal: 1},
		{ID: "R7", TriggerDev: "S_curtain", TriggerVal: 1, ActionDev: "P_washer", ActionVal: 1},
		{ID: "R8", TriggerDev: "PE_bedroom", TriggerVal: 1, ActionDev: "P_heater", ActionVal: 1},
	}
}

func TestRuleValidate(t *testing.T) {
	bad := []Rule{
		{},
		{ID: "x", TriggerDev: "a"},
		{ID: "x", TriggerDev: "a", ActionDev: "a"},
		{ID: "x", TriggerDev: "a", ActionDev: "b", TriggerVal: 2},
		{ID: "x", TriggerDev: "a", ActionDev: "b", ActionVal: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
	good := Rule{ID: "R1", TriggerDev: "a", TriggerVal: 1, ActionDev: "b", ActionVal: 0}
	if err := good.Validate(); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
}

func TestNewEngineRejectsDuplicateIDs(t *testing.T) {
	rules := []Rule{
		{ID: "R1", TriggerDev: "a", TriggerVal: 1, ActionDev: "b", ActionVal: 1},
		{ID: "R1", TriggerDev: "c", TriggerVal: 1, ActionDev: "d", ActionVal: 1},
	}
	if _, err := NewEngine(rules); err == nil {
		t.Error("duplicate rule ID accepted")
	}
}

func TestEngineActions(t *testing.T) {
	e, err := NewEngine(testRules())
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]int{"P_dishwasher": 0, "S_player": 0, "S_curtain": 0, "P_washer": 0, "P_heater": 0}
	current := func(name string) int { return states[name] }

	// Trigger matches and action device not yet in target state.
	acts := e.Actions("PE_living", 1, current)
	if len(acts) != 1 || acts[0].Device != "P_dishwasher" || acts[0].Value != 1 {
		t.Errorf("Actions = %+v", acts)
	}
	if acts[0].Rule.ID != "R1" {
		t.Errorf("rule = %s", acts[0].Rule.ID)
	}

	// Trigger value mismatch: no action.
	if acts := e.Actions("PE_living", 0, current); len(acts) != 0 {
		t.Errorf("mismatched trigger fired: %+v", acts)
	}

	// Already-satisfied action device: rule skipped (§VI-A semantics).
	states["P_dishwasher"] = 1
	if acts := e.Actions("PE_living", 1, current); len(acts) != 0 {
		t.Errorf("already-satisfied rule fired: %+v", acts)
	}

	// Unknown trigger device: nothing.
	if acts := e.Actions("nope", 1, current); len(acts) != 0 {
		t.Errorf("unknown trigger fired: %+v", acts)
	}
}

func TestChained(t *testing.T) {
	rules := testRules()
	if !Chained(rules[1], rules[2]) == false {
		// R3 sets S_player=1 but R6 triggers on S_player=0: NOT chained.
		t.Error("R3 -> R6 should not chain (value mismatch)")
	}
	if !Chained(rules[2], rules[3]) {
		t.Error("R6 -> R7 should chain")
	}
	if !Chained(rules[4], rules[1]) {
		t.Error("R8 -> R3 should chain")
	}
}

func TestChainsAndMaxLength(t *testing.T) {
	e, err := NewEngine(testRules())
	if err != nil {
		t.Fatal(err)
	}
	chains := e.Chains()
	// Expected chains: R6->R7 and R8->R3.
	if len(chains) != 2 {
		t.Fatalf("chains = %v", chains)
	}
	ids := func(chain []Rule) string {
		s := ""
		for _, r := range chain {
			s += r.ID + " "
		}
		return s
	}
	if ids(chains[0]) != "R6 R7 " || ids(chains[1]) != "R8 R3 " {
		t.Errorf("chains = %q, %q", ids(chains[0]), ids(chains[1]))
	}
	if got := e.MaxChainLength(); got != 2 {
		t.Errorf("MaxChainLength = %d, want 2", got)
	}
}

func TestMaxChainLengthNoChains(t *testing.T) {
	e, err := NewEngine([]Rule{{ID: "R1", TriggerDev: "a", TriggerVal: 1, ActionDev: "b", ActionVal: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.MaxChainLength(); got != 1 {
		t.Errorf("MaxChainLength = %d, want 1", got)
	}
	empty, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.MaxChainLength(); got != 0 {
		t.Errorf("empty MaxChainLength = %d, want 0", got)
	}
}

func TestChainsHandleCycles(t *testing.T) {
	// a->b, b->a: a cycle; Chains must terminate and cut at repetition.
	rules := []Rule{
		{ID: "A", TriggerDev: "x", TriggerVal: 1, ActionDev: "y", ActionVal: 1},
		{ID: "B", TriggerDev: "y", TriggerVal: 1, ActionDev: "x", ActionVal: 1},
	}
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	// Both rules have indegree > 0, so no root exists; Chains returns
	// nothing but must not hang, and MaxChainLength falls back to 1.
	if got := e.MaxChainLength(); got != 1 {
		t.Errorf("cycle MaxChainLength = %d, want 1", got)
	}
}

func TestThreeRuleChain(t *testing.T) {
	rules := []Rule{
		{ID: "A", TriggerDev: "t", TriggerVal: 1, ActionDev: "u", ActionVal: 1},
		{ID: "B", TriggerDev: "u", TriggerVal: 1, ActionDev: "v", ActionVal: 1},
		{ID: "C", TriggerDev: "v", TriggerVal: 1, ActionDev: "w", ActionVal: 1},
	}
	e, err := NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	chains := e.Chains()
	if len(chains) != 1 || len(chains[0]) != 3 {
		t.Fatalf("chains = %v", chains)
	}
	if e.MaxChainLength() != 3 {
		t.Errorf("MaxChainLength = %d", e.MaxChainLength())
	}
}
