// Package event defines the device and event model shared by the whole
// system: device attributes and their value classes (paper §II-A and
// Table I), device events as reported to the IoT platform, and event logs
// with the helpers the preprocessor and simulator need.
package event

import (
	"fmt"
	"sort"
	"time"
)

// Class categorizes a device attribute's value type (paper §V-A, "Type
// unification"). Binary states carry ON/OFF semantics; responsive numeric
// states are zero when idle and positive when in use; ambient numeric states
// are continuous environmental measurements.
type Class int

// Value classes of device states.
const (
	Binary Class = iota + 1
	ResponsiveNumeric
	AmbientNumeric
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Binary:
		return "binary"
	case ResponsiveNumeric:
		return "responsive-numeric"
	case AmbientNumeric:
		return "ambient-numeric"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Attribute describes a virtual device attribute abstracted by the IoT
// platform (paper §II-A), e.g. a presence sensor or a dimmer.
type Attribute struct {
	// Name is the attribute's identifier, e.g. "switch".
	Name string
	// Abbrev is the short label used in the paper's tables, e.g. "S".
	Abbrev string
	// Class is the attribute's value class.
	Class Class
	// Description explains what state changes mean.
	Description string
}

// The attribute catalog of Table I. Additional attributes (for the
// industrial and water-grid examples) can be declared by the caller; nothing
// in the pipeline depends on this fixed set.
var (
	Switch           = Attribute{Name: "switch", Abbrev: "S", Class: Binary, Description: "change of actuators"}
	PresenceSensor   = Attribute{Name: "presence", Abbrev: "PE", Class: Binary, Description: "movement detection"}
	ContactSensor    = Attribute{Name: "contact", Abbrev: "C", Class: Binary, Description: "door/window state"}
	Dimmer           = Attribute{Name: "dimmer", Abbrev: "D", Class: ResponsiveNumeric, Description: "change of lights"}
	WaterMeter       = Attribute{Name: "water-meter", Abbrev: "W", Class: ResponsiveNumeric, Description: "water usage"}
	PowerSensor      = Attribute{Name: "power", Abbrev: "P", Class: ResponsiveNumeric, Description: "appliance usage"}
	BrightnessSensor = Attribute{Name: "brightness", Abbrev: "B", Class: AmbientNumeric, Description: "luminosity level"}
)

// Device is an IoT device bound to the platform.
type Device struct {
	// Name uniquely identifies the device, e.g. "D_bathroom".
	Name string
	// Attribute is the virtual attribute the platform abstracts for it.
	Attribute Attribute
	// Location is the installation location, e.g. "bathroom".
	Location string
}

// Validate checks the device definition.
func (d Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("event: device with empty name (location %q)", d.Location)
	}
	if d.Attribute.Name == "" {
		return fmt.Errorf("event: device %q has no attribute", d.Name)
	}
	if d.Attribute.Class < Binary || d.Attribute.Class > AmbientNumeric {
		return fmt.Errorf("event: device %q has invalid class %d", d.Name, d.Attribute.Class)
	}
	return nil
}

// Event is a device state report in the platform's canonical format
// (timestamp, device name, installation location, device state) — paper
// §II-A. For binary attributes Value is 0 or 1; for numeric attributes it is
// the raw reading.
type Event struct {
	Timestamp time.Time
	Device    string
	Location  string
	Value     float64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %s@%s=%g", e.Timestamp.Format(time.RFC3339), e.Device, e.Location, e.Value)
}

// Log is an ordered sequence of device events.
type Log []Event

// SortByTime orders the log by ascending timestamp, preserving the relative
// order of simultaneous events.
func (l Log) SortByTime() {
	sort.SliceStable(l, func(i, j int) bool { return l[i].Timestamp.Before(l[j].Timestamp) })
}

// Sorted reports whether the log is in ascending timestamp order.
func (l Log) Sorted() bool {
	for i := 1; i < len(l); i++ {
		if l[i].Timestamp.Before(l[i-1].Timestamp) {
			return false
		}
	}
	return true
}

// AverageInterval returns the mean time between consecutive events (the
// quantity v used by the preprocessor to pick the maximum lag τ = d/v,
// paper §V-A). It returns 0 for logs with fewer than two events.
func (l Log) AverageInterval() time.Duration {
	if len(l) < 2 {
		return 0
	}
	span := l[len(l)-1].Timestamp.Sub(l[0].Timestamp)
	return span / time.Duration(len(l)-1)
}

// Devices returns the set of device names appearing in the log, sorted.
func (l Log) Devices() []string {
	seen := make(map[string]struct{})
	for _, e := range l {
		seen[e.Device] = struct{}{}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Filter returns the events for which keep returns true, preserving order.
func (l Log) Filter(keep func(Event) bool) Log {
	out := make(Log, 0, len(l))
	for _, e := range l {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}
