package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func binarySample(vals []int) Sample { return Sample{Values: vals, Arity: 2} }

func TestGSquareIndependentVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Intn(2)
		y[i] = rng.Intn(2)
	}
	res, err := GSquareTester{}.Test(binarySample(x), binarySample(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("independent variables rejected: p=%v stat=%v", res.PValue, res.Statistic)
	}
	if res.DOF != 1 {
		t.Errorf("dof = %d, want 1", res.DOF)
	}
}

func TestGSquareDependentVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 2000
	x := make([]int, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Intn(2)
		y[i] = x[i]
		if rng.Float64() < 0.05 {
			y[i] = 1 - y[i]
		}
	}
	res, err := GSquareTester{}.Test(binarySample(x), binarySample(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("strongly dependent variables not rejected: p=%v", res.PValue)
	}
}

// A chain X -> Z -> Y: X and Y are marginally dependent but conditionally
// independent given Z. This is exactly the "intermediate device" spurious
// interaction the paper's TemporalPC must remove.
func TestGSquareChainConditionalIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8000
	x := make([]int, n)
	z := make([]int, n)
	y := make([]int, n)
	noise := func(v int, p float64) int {
		if rng.Float64() < p {
			return 1 - v
		}
		return v
	}
	for i := 0; i < n; i++ {
		x[i] = rng.Intn(2)
		z[i] = noise(x[i], 0.1)
		y[i] = noise(z[i], 0.1)
	}
	marginal, err := GSquareTester{}.Test(binarySample(x), binarySample(y), nil)
	if err != nil {
		t.Fatal(err)
	}
	if marginal.PValue > 1e-6 {
		t.Fatalf("chain endpoints should be marginally dependent, p=%v", marginal.PValue)
	}
	conditional, err := GSquareTester{}.Test(binarySample(x), binarySample(y), []Sample{binarySample(z)})
	if err != nil {
		t.Fatal(err)
	}
	if conditional.PValue < 0.001 {
		t.Errorf("chain endpoints should be conditionally independent given Z, p=%v", conditional.PValue)
	}
	if conditional.DOF != 2 {
		t.Errorf("conditional dof = %d, want 2", conditional.DOF)
	}
}

// A common cause Z -> X, Z -> Y behaves the same way.
func TestGSquareCommonCauseConditionalIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 8000
	x := make([]int, n)
	z := make([]int, n)
	y := make([]int, n)
	noise := func(v int, p float64) int {
		if rng.Float64() < p {
			return 1 - v
		}
		return v
	}
	for i := 0; i < n; i++ {
		z[i] = rng.Intn(2)
		x[i] = noise(z[i], 0.15)
		y[i] = noise(z[i], 0.15)
	}
	conditional, err := GSquareTester{}.Test(binarySample(x), binarySample(y), []Sample{binarySample(z)})
	if err != nil {
		t.Fatal(err)
	}
	if conditional.PValue < 0.001 {
		t.Errorf("common-cause children should be conditionally independent given Z, p=%v", conditional.PValue)
	}
}

func TestGSquareValidation(t *testing.T) {
	if _, err := (GSquareTester{}).Test(binarySample([]int{0, 1}), binarySample([]int{0}), nil); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := (GSquareTester{}).Test(Sample{Values: []int{0, 2}, Arity: 2}, binarySample([]int{0, 1}), nil); err == nil {
		t.Error("expected out-of-range value error")
	}
	if _, err := (GSquareTester{}).Test(Sample{Values: nil, Arity: 1}, binarySample(nil), nil); err == nil {
		t.Error("expected arity error")
	}
	if _, err := (GSquareTester{}).Test(binarySample(nil), binarySample(nil), nil); err == nil {
		t.Error("expected empty-sample error")
	}
}

func TestGSquareMinObsHeuristic(t *testing.T) {
	// 8 observations with a 3-variable conditioning set: dof = 8, so with
	// MinObsPerDOF=10 the test must refuse and assume independence.
	x := binarySample([]int{0, 1, 0, 1, 0, 1, 0, 1})
	y := binarySample([]int{0, 1, 0, 1, 0, 1, 0, 1})
	zs := []Sample{
		binarySample([]int{0, 0, 1, 1, 0, 0, 1, 1}),
		binarySample([]int{0, 1, 1, 0, 0, 1, 1, 0}),
		binarySample([]int{1, 1, 0, 0, 1, 1, 0, 0}),
	}
	res, err := GSquareTester{MinObsPerDOF: 10}.Test(x, y, zs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliable {
		t.Error("expected test to be marked unreliable")
	}
	if res.PValue != 1 {
		t.Errorf("unreliable test p-value = %v, want 1", res.PValue)
	}
	// Without the heuristic the test actually runs and is marked reliable.
	res2, err := GSquareTester{}.Test(x, y, zs)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Reliable {
		t.Errorf("heuristic-free test should be marked reliable, got reliable=%v", res2.Reliable)
	}
	// With no conditioning set, the deterministic X==Y dependence fires
	// even on 8 observations.
	res3, err := GSquareTester{}.Test(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res3.PValue > 0.05 {
		t.Errorf("unconditional deterministic dependence should fire: p=%v", res3.PValue)
	}
}

func TestGSquareDeterministicDependence(t *testing.T) {
	// Y == X exactly: G² = 2·n·ln2 for balanced X.
	n := 100
	x := make([]int, n)
	for i := range x {
		x[i] = i % 2
	}
	res, err := GSquareTester{}.Test(binarySample(x), binarySample(x), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * float64(n) * 0.6931471805599453
	if !almostEqual(res.Statistic, want, 1e-6) {
		t.Errorf("G² = %v, want %v", res.Statistic, want)
	}
}

// Property: the statistic is non-negative and the p-value lies in [0,1] for
// arbitrary binary data.
func TestGSquareProperty(t *testing.T) {
	f := func(seed int64, rawN uint16) bool {
		n := int(rawN%500) + 4
		rng := rand.New(rand.NewSource(seed))
		x := make([]int, n)
		y := make([]int, n)
		z := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(2)
			y[i] = rng.Intn(2)
			z[i] = rng.Intn(2)
		}
		res, err := GSquareTester{}.Test(binarySample(x), binarySample(y), []Sample{binarySample(z)})
		if err != nil {
			return false
		}
		return res.Statistic >= 0 && res.PValue >= 0 && res.PValue <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: swapping X and Y leaves the statistic unchanged (symmetry).
func TestGSquareSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(2)
			if rng.Float64() < 0.7 {
				y[i] = x[i]
			} else {
				y[i] = rng.Intn(2)
			}
		}
		a, err1 := GSquareTester{}.Test(binarySample(x), binarySample(y), nil)
		b, err2 := GSquareTester{}.Test(binarySample(y), binarySample(x), nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(a.Statistic, b.Statistic, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCountsMatchesSamplePath: a table accumulated incrementally must test
// bit-identically to the per-observation path over the same observations.
func TestCountsMatchesSamplePath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 3000
	x := make([]int, n)
	y := make([]int, n)
	z := make([]int, n)
	for i := 0; i < n; i++ {
		z[i] = rng.Intn(2)
		x[i] = rng.Intn(2)
		y[i] = x[i] ^ z[i]
		if rng.Float64() < 0.2 {
			y[i] = 1 - y[i]
		}
	}
	zs := []Sample{binarySample(z)}
	tester := GSquareTester{MinObsPerDOF: 5}
	ref, err := tester.Test(binarySample(x), binarySample(y), zs)
	if err != nil {
		t.Fatal(err)
	}
	joint := make([]float64, 2*2*2)
	for i := 0; i < n; i++ {
		joint[z[i]*4+x[i]*2+y[i]]++
	}
	got, err := tester.TestCounts(joint, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref {
		t.Fatalf("counts path %+v differs from sample path %+v", got, ref)
	}
}

func TestCountsMinObsGuard(t *testing.T) {
	joint := []float64{1, 0, 0, 1}
	res, err := GSquareTester{MinObsPerDOF: 100}.TestCounts(joint, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliable || res.PValue != 1 {
		t.Fatalf("sparse table not marked unreliable: %+v", res)
	}
}

func TestCountsValidation(t *testing.T) {
	tester := GSquareTester{}
	cases := []struct {
		name   string
		joint  []float64
		x, y  int
		zCard  int
	}{
		{"arity", []float64{1, 2}, 1, 2, 1},
		{"zcard-zero", []float64{}, 2, 2, 0},
		{"zcard-overflow", []float64{}, 2, 2, maxZCard + 1},
		{"size", []float64{1, 2, 3}, 2, 2, 1},
		{"negative", []float64{1, -1, 2, 3}, 2, 2, 1},
		{"nan", []float64{1, math.NaN(), 2, 3}, 2, 2, 1},
		{"inf", []float64{1, math.Inf(1), 2, 3}, 2, 2, 1},
	}
	for _, c := range cases {
		if _, err := tester.TestCounts(c.joint, c.x, c.y, c.zCard); err == nil {
			t.Errorf("%s: invalid table accepted", c.name)
		}
	}
	if _, err := tester.TestCounts([]float64{0, 0, 0, 0}, 2, 2, 1); err != ErrEmpty {
		t.Errorf("zero-mass table: err = %v, want ErrEmpty", err)
	}
}
