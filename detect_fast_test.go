package causaliot

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// TestReferenceMonitorMatchesMonitor holds the compiled serving path
// bit-identical to the reference clone-window path through the public API:
// the same raw event stream must produce identical detections, alarms
// (including rendered context labels), and flushes.
func TestReferenceMonitorMatchesMonitor(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2, KMax: 3})
	fast, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.NewReferenceMonitor()
	if err != nil {
		t.Fatal(err)
	}
	stream := trainingLog(30, 7)
	// Splice in anomalies: ghost light activations without presence, an
	// unknown device, and a glitched reading.
	stream = append(stream,
		Event{Time: t0.Add(5 * time.Hour), Device: "light", Value: 1},
		Event{Time: t0.Add(5*time.Hour + time.Second), Device: "ghost", Value: 1},
		Event{Time: t0.Add(5*time.Hour + 2*time.Second), Device: "light", Value: 0},
		Event{Time: t0.Add(5*time.Hour + 3*time.Second), Device: "light", Value: 1},
	)
	for i, e := range stream {
		fd, fErr := fast.ObserveEvent(e)
		rd, rErr := ref.ObserveEvent(e)
		if (fErr == nil) != (rErr == nil) {
			t.Fatalf("event %d: fast err %v, reference err %v", i, fErr, rErr)
		}
		if fErr != nil {
			continue
		}
		if !reflect.DeepEqual(fd, rd) {
			t.Fatalf("event %d: fast detection %+v, reference %+v", i, fd, rd)
		}
	}
	if fast.Pending() != ref.Pending() {
		t.Fatalf("pending diverged: fast %d, reference %d", fast.Pending(), ref.Pending())
	}
	if !reflect.DeepEqual(fast.Flush(), ref.Flush()) {
		t.Error("Flush diverged between compiled and reference monitors")
	}
}

// TestCauseLabelsPrerendered pins the precomputed context-label table to the
// fmt.Sprintf rendering it replaces, including the fallback for lags beyond
// the current graph's window.
func TestCauseLabelsPrerendered(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	reg := sys.graph.Registry
	for dev := 0; dev < reg.Len(); dev++ {
		for lag := 1; lag <= sys.graph.Tau; lag++ {
			want := fmt.Sprintf("%s@t-%d", reg.Name(dev), lag)
			if got := sys.causeLabel(dev, lag); got != want {
				t.Errorf("causeLabel(%d,%d) = %q, want %q", dev, lag, got, want)
			}
		}
		// Lag beyond the table (chain event recorded before a shrinking
		// hot-swap) must still render.
		beyond := sys.graph.Tau + 3
		want := fmt.Sprintf("%s@t-%d", reg.Name(dev), beyond)
		if got := sys.causeLabel(dev, beyond); got != want {
			t.Errorf("causeLabel(%d,%d) fallback = %q, want %q", dev, beyond, got, want)
		}
	}
}

// TestExtendRecompiles guards the in-place CPT refit against stale compiled
// score tables: Extend must rebuild the compiled graph it hands to new
// monitors.
func TestExtendRecompiles(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	before := sys.compiled
	if before == nil {
		t.Fatal("trained system lacks a compiled graph")
	}
	if err := sys.Extend(trainingLog(80, 5)); err != nil {
		t.Fatal(err)
	}
	if sys.compiled == before {
		t.Error("Extend left the stale compiled graph in place")
	}
	// New monitors on both paths must still agree after the refit.
	fast, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sys.NewReferenceMonitor()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range trainingLog(10, 11) {
		fd, fErr := fast.ObserveEvent(e)
		rd, rErr := ref.ObserveEvent(e)
		if (fErr == nil) != (rErr == nil) || !reflect.DeepEqual(fd, rd) {
			t.Fatalf("event %d diverged after Extend: %+v/%v vs %+v/%v", i, fd, fErr, rd, rErr)
		}
	}
}
