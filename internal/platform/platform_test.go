package platform

import (
	"testing"
	"time"

	"github.com/causaliot/causaliot/internal/automation"
	"github.com/causaliot/causaliot/internal/event"
)

var t0 = time.Date(2023, 1, 1, 8, 0, 0, 0, time.UTC)

func testDevices() []event.Device {
	return []event.Device{
		{Name: "PE_bedroom", Attribute: event.PresenceSensor, Location: "bedroom"},
		{Name: "P_heater", Attribute: event.PowerSensor, Location: "bathroom"},
		{Name: "S_player", Attribute: event.Switch, Location: "bedroom"},
		{Name: "B_kitchen", Attribute: event.BrightnessSensor, Location: "kitchen"},
	}
}

func chainedRules() []automation.Rule {
	return []automation.Rule{
		{ID: "R8", TriggerDev: "PE_bedroom", TriggerVal: 1, ActionDev: "P_heater", ActionVal: 1},
		{ID: "R3", TriggerDev: "P_heater", TriggerVal: 1, ActionDev: "S_player", ActionVal: 1},
	}
}

func mustHub(t *testing.T, rules []automation.Rule, cfg Config) *Hub {
	t.Helper()
	engine, err := automation.NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(testDevices(), engine, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHubValidation(t *testing.T) {
	engine, _ := automation.NewEngine(nil)
	if _, err := NewHub(nil, engine, Config{}); err == nil {
		t.Error("no devices accepted")
	}
	if _, err := NewHub(testDevices(), nil, Config{}); err == nil {
		t.Error("nil engine accepted")
	}
	dup := []event.Device{
		{Name: "a", Attribute: event.Switch},
		{Name: "a", Attribute: event.Switch},
	}
	if _, err := NewHub(dup, engine, Config{}); err == nil {
		t.Error("duplicate devices accepted")
	}
	badTrigger, _ := automation.NewEngine([]automation.Rule{
		{ID: "X", TriggerDev: "ghost", TriggerVal: 1, ActionDev: "S_player", ActionVal: 1},
	})
	if _, err := NewHub(testDevices(), badTrigger, Config{}); err == nil {
		t.Error("rule on unbound trigger accepted")
	}
	badAction, _ := automation.NewEngine([]automation.Rule{
		{ID: "X", TriggerDev: "S_player", TriggerVal: 1, ActionDev: "B_kitchen", ActionVal: 1},
	})
	if _, err := NewHub(testDevices(), badAction, Config{}); err == nil {
		t.Error("rule actuating ambient sensor accepted")
	}
}

func TestIngestTracksStateAndLog(t *testing.T) {
	h := mustHub(t, nil, Config{})
	cascade, err := h.Ingest(event.Event{Timestamp: t0, Device: "S_player", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cascade) != 1 {
		t.Fatalf("cascade = %v", cascade)
	}
	if v, ok := h.RawState("S_player"); !ok || v != 1 {
		t.Errorf("RawState = %v,%v", v, ok)
	}
	if b, err := h.BinaryState("S_player"); err != nil || b != 1 {
		t.Errorf("BinaryState = %v,%v", b, err)
	}
	if h.EventCount() != 1 {
		t.Errorf("EventCount = %d", h.EventCount())
	}
	if got := h.Log(); len(got) != 1 || got[0].Location != "bedroom" {
		t.Errorf("Log = %v (location should default from the device)", got)
	}
}

func TestIngestRejectsUnboundDevice(t *testing.T) {
	h := mustHub(t, nil, Config{})
	if _, err := h.Ingest(event.Event{Timestamp: t0, Device: "ghost", Value: 1}); err != nil {
		if h.EventCount() != 0 {
			t.Error("rejected event was logged")
		}
	} else {
		t.Error("unbound device accepted")
	}
}

func TestChainedAutomationExecution(t *testing.T) {
	h := mustHub(t, chainedRules(), Config{ActionDelay: time.Second})
	cascade, err := h.Ingest(event.Event{Timestamp: t0, Device: "PE_bedroom", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PE_bedroom=1 -> R8 -> P_heater=50 -> R3 -> S_player=1.
	if len(cascade) != 3 {
		t.Fatalf("cascade length = %d, want 3: %v", len(cascade), cascade)
	}
	if cascade[1].Device != "P_heater" || cascade[1].Value != 50 {
		t.Errorf("cascade[1] = %v (responsive action should use nominal raw value)", cascade[1])
	}
	if cascade[2].Device != "S_player" || cascade[2].Value != 1 {
		t.Errorf("cascade[2] = %v", cascade[2])
	}
	if !cascade[1].Timestamp.Equal(t0.Add(time.Second)) || !cascade[2].Timestamp.Equal(t0.Add(2*time.Second)) {
		t.Errorf("action delays wrong: %v %v", cascade[1].Timestamp, cascade[2].Timestamp)
	}
	if h.EventCount() != 3 {
		t.Errorf("EventCount = %d", h.EventCount())
	}
}

func TestRuleSkippedWhenActionAlreadySatisfied(t *testing.T) {
	h := mustHub(t, chainedRules(), Config{})
	if _, err := h.Ingest(event.Event{Timestamp: t0, Device: "P_heater", Value: 50}); err != nil {
		t.Fatal(err)
	}
	// S_player is now 1 (via R3). A later heater report must not re-fire;
	// neither should R8 when the heater is already on.
	n := h.EventCount()
	cascade, err := h.Ingest(event.Event{Timestamp: t0.Add(time.Minute), Device: "PE_bedroom", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cascade) != 1 {
		t.Errorf("cascade = %v, want only the presence event", cascade)
	}
	if h.EventCount() != n+1 {
		t.Errorf("EventCount grew by %d", h.EventCount()-n)
	}
}

func TestChainDepthCap(t *testing.T) {
	// Self-sustaining pair: a on -> b on -> a off -> b off -> a on ...
	devices := []event.Device{
		{Name: "a", Attribute: event.Switch, Location: "x"},
		{Name: "b", Attribute: event.Switch, Location: "x"},
	}
	rules := []automation.Rule{
		{ID: "1", TriggerDev: "a", TriggerVal: 1, ActionDev: "b", ActionVal: 1},
		{ID: "2", TriggerDev: "b", TriggerVal: 1, ActionDev: "a", ActionVal: 0},
		{ID: "3", TriggerDev: "a", TriggerVal: 0, ActionDev: "b", ActionVal: 0},
		{ID: "4", TriggerDev: "b", TriggerVal: 0, ActionDev: "a", ActionVal: 1},
	}
	engine, err := automation.NewEngine(rules)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHub(devices, engine, Config{MaxChainDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	cascade, err := h.Ingest(event.Event{Timestamp: t0, Device: "a", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cascade) > 6 {
		t.Errorf("cascade length %d exceeds depth cap", len(cascade))
	}
}

func TestSubscribersReceiveCascade(t *testing.T) {
	h := mustHub(t, chainedRules(), Config{})
	var seen []string
	h.Subscribe(func(e event.Event) { seen = append(seen, e.Device) })
	if _, err := h.Ingest(event.Event{Timestamp: t0, Device: "PE_bedroom", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != "PE_bedroom" || seen[1] != "P_heater" || seen[2] != "S_player" {
		t.Errorf("subscriber saw %v", seen)
	}
}

func TestSubscriberMayReingest(t *testing.T) {
	// A subscriber that reacts to the player by reporting brightness must
	// not deadlock (callbacks run outside the hub lock).
	h := mustHub(t, chainedRules(), Config{})
	h.Subscribe(func(e event.Event) {
		if e.Device == "S_player" && e.Value == 1 {
			if _, err := h.Ingest(event.Event{Timestamp: e.Timestamp.Add(time.Second), Device: "B_kitchen", Value: 300}); err != nil {
				t.Errorf("re-ingest failed: %v", err)
			}
		}
	})
	if _, err := h.Ingest(event.Event{Timestamp: t0, Device: "PE_bedroom", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if h.EventCount() != 4 {
		t.Errorf("EventCount = %d, want 4", h.EventCount())
	}
}

func TestBinaryStateUnknownDevice(t *testing.T) {
	h := mustHub(t, nil, Config{})
	if _, err := h.BinaryState("ghost"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDefaultUnify(t *testing.T) {
	sw := event.Device{Name: "s", Attribute: event.Switch}
	br := event.Device{Name: "b", Attribute: event.BrightnessSensor}
	pw := event.Device{Name: "p", Attribute: event.PowerSensor}
	if DefaultUnify(sw, 1) != 1 || DefaultUnify(sw, 0) != 0 {
		t.Error("binary unify wrong")
	}
	if DefaultUnify(pw, 37.5) != 1 || DefaultUnify(pw, 0) != 0 {
		t.Error("responsive unify wrong")
	}
	if DefaultUnify(br, 1e9) != 0 {
		t.Error("ambient should default to Low without a threshold")
	}
}

func TestHubConcurrentIngest(t *testing.T) {
	h := mustHub(t, chainedRules(), Config{})
	const workers = 8
	const perWorker = 50
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				e := event.Event{
					Timestamp: t0.Add(time.Duration(w*perWorker+i) * time.Second),
					Device:    "S_player",
					Value:     float64(i % 2),
				}
				if _, err := h.Ingest(e); err != nil {
					done <- err
					return
				}
				if _, err := h.BinaryState("S_player"); err != nil {
					done <- err
					return
				}
				_ = h.EventCount()
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if h.EventCount() < workers*perWorker {
		t.Errorf("EventCount = %d, want >= %d", h.EventCount(), workers*perWorker)
	}
}
