package hub

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCloseReleasesBlockedProducers pins the Close half of the blocked-
// producer contract (Deregister's half has its own test): a producer parked
// on a full Block-policy queue must be released with an error when the hub
// shuts down, never left blocked forever.
func TestCloseReleasesBlockedProducers(t *testing.T) {
	gate := make(chan struct{})
	p := &recorder{gate: gate}
	h := New(Config{Workers: 1, QueueSize: 1, Policy: Block})
	if err := h.Register("home", p, TenantConfig{}); err != nil {
		t.Fatal(err)
	}
	// Fill the worker and the queue, then park a producer on the full queue.
	for j := 0; j < 2; j++ {
		if err := h.Submit("home", Event{Value: float64(j)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- h.Submit("home", Event{Value: 99}) }()
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- h.Close() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked submit during close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close left the producer blocked")
	}
	close(gate) // let the in-flight Handle finish so Close can drain
	if err := <-closed; err != nil {
		t.Fatal(err)
	}
}

// TestRegisterCloseRace pins the Register/Close TOCTOU fix: when Register
// races Close, it either returns ErrClosed or succeeds — and a successful
// registration is always swept by Close, so its blocked producers are
// released and the hub never deadlocks or panics.
func TestRegisterCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		h := New(Config{Workers: 2, QueueSize: 4})
		if err := h.Register("seed", &recorder{}, TenantConfig{}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		regErrs := make([]error, 8)
		for i := range regErrs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				regErrs[i] = h.Register(fmt.Sprintf("late-%d", i), &recorder{}, TenantConfig{})
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := h.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		wg.Wait()
		for i, err := range regErrs {
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("round %d: racing register %d = %v, want nil or ErrClosed", round, i, err)
			}
		}
		// Whatever the race outcome, the hub is fully closed now.
		if err := h.Submit("seed", Event{}); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: submit after close = %v", round, err)
		}
	}
}

// TestConcurrentSubmitDeregisterCloseStress hammers the full lifecycle —
// producers submitting under every policy while tenants are deregistered
// and the hub closes mid-flight — and asserts the only errors producers
// ever see are the documented ones.
func TestConcurrentSubmitDeregisterCloseStress(t *testing.T) {
	const tenants, producers, events = 6, 3, 200
	h := New(Config{Workers: 4, QueueSize: 8, Policy: Block})
	policies := []Policy{Block, DropOldest, Reject}
	for i := 0; i < tenants; i++ {
		cfg := TenantConfig{Policy: policies[i%len(policies)]}
		if err := h.Register(fmt.Sprintf("home-%d", i), &recorder{}, cfg); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(i, p int) {
				defer wg.Done()
				name := fmt.Sprintf("home-%d", i)
				rng := rand.New(rand.NewSource(int64(i*100 + p)))
				for j := 0; j < events; j++ {
					err := h.Submit(name, Event{Value: float64(j)})
					switch {
					case err == nil, errors.Is(err, ErrClosed),
						errors.Is(err, ErrUnknownTenant), errors.Is(err, ErrBackpressure):
					default:
						t.Errorf("submit %s: unexpected error %v", name, err)
						return
					}
					if rng.Intn(64) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
				}
			}(i, p)
		}
	}
	// Deregister tenants while producers are mid-stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < tenants/2; i++ {
			time.Sleep(time.Duration(2+i) * time.Millisecond)
			if err := h.Deregister(fmt.Sprintf("home-%d", i)); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("deregister: %v", err)
			}
		}
	}()
	// And close the hub while all of that is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		if err := h.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Errorf("idempotent close after stress = %v", err)
	}
}
