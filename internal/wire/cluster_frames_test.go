package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// readOne decodes the single frame encoded in buf, asserting the type.
func readClusterFrame(t *testing.T, buf []byte, want FrameType) []byte {
	t.Helper()
	r := NewReader(bytes.NewReader(buf), 0)
	ft, p, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if ft != want {
		t.Fatalf("frame type = %v, want %v", ft, want)
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func TestClusterFrameRoundTrips(t *testing.T) {
	t.Run("shard-hello", func(t *testing.T) {
		buf, err := AppendShardHello(nil, "tok", "router-1")
		if err != nil {
			t.Fatal(err)
		}
		v, tok, router, err := ParseShardHello(readClusterFrame(t, buf, FrameShardHello))
		if err != nil || v != Version || tok != "tok" || router != "router-1" {
			t.Fatalf("got v=%d tok=%q router=%q err=%v", v, tok, router, err)
		}
	})
	t.Run("shard-welcome", func(t *testing.T) {
		buf := AppendShardWelcome(nil, 777)
		v, max, err := ParseShardWelcome(readClusterFrame(t, buf, FrameShardWelcome))
		if err != nil || v != Version || max != 777 {
			t.Fatalf("got v=%d max=%d err=%v", v, max, err)
		}
	})
	t.Run("register-tenant", func(t *testing.T) {
		in := RegisterTenant{Tenant: "home-3", Flags: RegFlagHasState, Queue: 512, Policy: 2}
		buf, err := AppendRegisterTenant(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseRegisterTenant(readClusterFrame(t, buf, FrameRegisterTenant))
		if err != nil || out != in {
			t.Fatalf("got %+v err=%v, want %+v", out, err, in)
		}
	})
	t.Run("envelope-chunk", func(t *testing.T) {
		in := EnvelopeChunk{Tenant: "home-3", Kind: EnvState, Data: []byte("abcdef")}
		buf, err := AppendEnvelopeChunk(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseEnvelopeChunk(readClusterFrame(t, buf, FrameEnvelopeChunk))
		if err != nil || out.Tenant != in.Tenant || out.Kind != in.Kind || !bytes.Equal(out.Data, in.Data) {
			t.Fatalf("got %+v err=%v, want %+v", out, err, in)
		}
	})
	t.Run("tenant-ok", func(t *testing.T) {
		in := TenantOK{Op: OpQuiesce, Tenant: "home-3", Watermark: 42, AlarmIdx: 7}
		buf, err := AppendTenantOK(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseTenantOK(readClusterFrame(t, buf, FrameTenantOK))
		if err != nil || out != in {
			t.Fatalf("got %+v err=%v, want %+v", out, err, in)
		}
	})
	t.Run("shard-err", func(t *testing.T) {
		in := ShardErr{Op: OpRegister, Tenant: "home-3", Code: CodeUnknownTenant, Detail: "no such"}
		buf, err := AppendShardErr(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseShardErr(readClusterFrame(t, buf, FrameShardErr))
		if err != nil || out != in {
			t.Fatalf("got %+v err=%v, want %+v", out, err, in)
		}
	})
	t.Run("submit-batch", func(t *testing.T) {
		now := time.Unix(0, 1712345678e9).UTC()
		in := []BatchEvent{
			{Link: 1, Ev: Event{Seq: 10, Time: now, Device: "lamp", Value: 1}},
			{Link: 2, Ev: Event{Seq: 11, Time: now.Add(time.Second), Device: "door", Value: 0}},
		}
		buf, err := AppendSubmitBatch(nil, "home-3", in)
		if err != nil {
			t.Fatal(err)
		}
		tenant, out, err := ParseSubmitBatch(readClusterFrame(t, buf, FrameSubmitBatch), nil)
		if err != nil || tenant != "home-3" || !reflect.DeepEqual(out, in) {
			t.Fatalf("got tenant=%q %+v err=%v, want %+v", tenant, out, err, in)
		}
	})
	t.Run("shard-ack", func(t *testing.T) {
		buf, err := AppendShardAck(nil, "home-3", 99)
		if err != nil {
			t.Fatal(err)
		}
		tenant, wm, err := ParseShardAck(readClusterFrame(t, buf, FrameShardAck))
		if err != nil || tenant != "home-3" || wm != 99 {
			t.Fatalf("got tenant=%q wm=%d err=%v", tenant, wm, err)
		}
	})
	t.Run("shard-nack", func(t *testing.T) {
		in := ShardNack{Tenant: "home-3", Link: 5, Code: CodeBackpressure, Detail: "full"}
		buf, err := AppendShardNack(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := ParseShardNack(readClusterFrame(t, buf, FrameShardNack))
		if err != nil || out != in {
			t.Fatalf("got %+v err=%v, want %+v", out, err, in)
		}
	})
	t.Run("alarm-stream", func(t *testing.T) {
		in := Alarm{Seq: 8, Score: 0.25, Abrupt: true, Events: []AlarmEvent{
			{Device: "lamp", State: 1, Score: 0.5, Context: []ContextEntry{{Name: "door", State: 0}}},
		}}
		buf, err := AppendAlarmStream(nil, "home-3", 4, in)
		if err != nil {
			t.Fatal(err)
		}
		tenant, idx, out, err := ParseAlarmStream(readClusterFrame(t, buf, FrameAlarmStream))
		if err != nil || tenant != "home-3" || idx != 4 || !reflect.DeepEqual(out, in) {
			t.Fatalf("got tenant=%q idx=%d %+v err=%v", tenant, idx, out, err)
		}
	})
	t.Run("alarm-stream-ack", func(t *testing.T) {
		buf, err := AppendAlarmStreamAck(nil, "home-3", 4)
		if err != nil {
			t.Fatal(err)
		}
		tenant, idx, err := ParseAlarmStreamAck(readClusterFrame(t, buf, FrameAlarmStreamAck))
		if err != nil || tenant != "home-3" || idx != 4 {
			t.Fatalf("got tenant=%q idx=%d err=%v", tenant, idx, err)
		}
	})
	t.Run("resume-tenant", func(t *testing.T) {
		buf, err := AppendResumeTenant(nil, "home-3", 6)
		if err != nil {
			t.Fatal(err)
		}
		tenant, idx, err := ParseResumeTenant(readClusterFrame(t, buf, FrameResumeTenant))
		if err != nil || tenant != "home-3" || idx != 6 {
			t.Fatalf("got tenant=%q idx=%d err=%v", tenant, idx, err)
		}
	})
	t.Run("tenant-frames", func(t *testing.T) {
		for _, ft := range []FrameType{FrameEnvelopeDone, FrameQuiesce, FrameExportEnvelope, FrameDeregisterTenant, FrameFlushTenant} {
			buf, err := AppendTenantFrame(nil, ft, "home-3")
			if err != nil {
				t.Fatal(err)
			}
			tenant, err := ParseTenantFrame(readClusterFrame(t, buf, ft))
			if err != nil || tenant != "home-3" {
				t.Fatalf("%v: got tenant=%q err=%v", ft, tenant, err)
			}
		}
	})
	t.Run("shard-stats", func(t *testing.T) {
		doc := []byte(`{"events":1}`)
		buf := AppendShardStats(nil, doc)
		if got := readClusterFrame(t, buf, FrameShardStats); !bytes.Equal(got, doc) {
			t.Fatalf("got %q, want %q", got, doc)
		}
		buf = AppendShardStatsReq(nil)
		if got := readClusterFrame(t, buf, FrameShardStatsReq); len(got) != 0 {
			t.Fatalf("stats-req payload = %q, want empty", got)
		}
	})
	t.Run("drain", func(t *testing.T) {
		buf := AppendDrain(nil, 2500)
		ms, err := ParseDrain(readClusterFrame(t, buf, FrameDrain))
		if err != nil || ms != 2500 {
			t.Fatalf("got ms=%d err=%v", ms, err)
		}
	})
}

// Every cluster parser must reject a truncated payload with ErrBadFrame
// (never panic, never return partial data silently).
func TestClusterFrameTruncation(t *testing.T) {
	now := time.Unix(0, 1712345678e9).UTC()
	full := map[string][]byte{}
	add := func(name string, buf []byte, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		full[name] = buf[headerLen+1:] // strip length header + type byte
	}
	b, err := AppendShardHello(nil, "tok", "r")
	add("shard-hello", b, err)
	add("shard-welcome", AppendShardWelcome(nil, 1), nil)
	b, err = AppendRegisterTenant(nil, RegisterTenant{Tenant: "t", Queue: 1})
	add("register-tenant", b, err)
	b, err = AppendEnvelopeChunk(nil, EnvelopeChunk{Tenant: "t", Kind: EnvModel, Data: []byte{1}})
	add("envelope-chunk", b, err)
	b, err = AppendTenantOK(nil, TenantOK{Op: OpResume, Tenant: "t", Watermark: 1, AlarmIdx: 1})
	add("tenant-ok", b, err)
	b, err = AppendShardErr(nil, ShardErr{Op: OpResume, Tenant: "t", Code: CodeInternal, Detail: "d"})
	add("shard-err", b, err)
	b, err = AppendSubmitBatch(nil, "t", []BatchEvent{{Link: 1, Ev: Event{Seq: 1, Time: now, Device: "d", Value: 1}}})
	add("submit-batch", b, err)
	b, err = AppendShardAck(nil, "t", 1)
	add("shard-ack", b, err)
	b, err = AppendShardNack(nil, ShardNack{Tenant: "t", Link: 1, Code: CodeInternal, Detail: "d"})
	add("shard-nack", b, err)
	b, err = AppendAlarmStream(nil, "t", 1, Alarm{Seq: 1, Events: []AlarmEvent{{Device: "d"}}})
	add("alarm-stream", b, err)
	b, err = AppendAlarmStreamAck(nil, "t", 1)
	add("alarm-stream-ack", b, err)
	b, err = AppendResumeTenant(nil, "t", 1)
	add("resume-tenant", b, err)
	b, err = AppendTenantFrame(nil, FrameQuiesce, "t")
	add("tenant-frame", b, err)
	add("drain", AppendDrain(nil, 1), nil)

	parse := map[string]func([]byte) error{
		"shard-hello":      func(p []byte) error { _, _, _, err := ParseShardHello(p); return err },
		"shard-welcome":    func(p []byte) error { _, _, err := ParseShardWelcome(p); return err },
		"register-tenant":  func(p []byte) error { _, err := ParseRegisterTenant(p); return err },
		"envelope-chunk":   func(p []byte) error { _, err := ParseEnvelopeChunk(p); return err },
		"tenant-ok":        func(p []byte) error { _, err := ParseTenantOK(p); return err },
		"shard-err":        func(p []byte) error { _, err := ParseShardErr(p); return err },
		"submit-batch":     func(p []byte) error { _, _, err := ParseSubmitBatch(p, nil); return err },
		"shard-ack":        func(p []byte) error { _, _, err := ParseShardAck(p); return err },
		"shard-nack":       func(p []byte) error { _, err := ParseShardNack(p); return err },
		"alarm-stream":     func(p []byte) error { _, _, _, err := ParseAlarmStream(p); return err },
		"alarm-stream-ack": func(p []byte) error { _, _, err := ParseAlarmStreamAck(p); return err },
		"resume-tenant":    func(p []byte) error { _, _, err := ParseResumeTenant(p); return err },
		"tenant-frame":     func(p []byte) error { _, err := ParseTenantFrame(p); return err },
		"drain":            func(p []byte) error { _, err := ParseDrain(p); return err },
	}
	for name, payload := range full {
		fn := parse[name]
		if fn == nil {
			t.Fatalf("no parser registered for %s", name)
		}
		if err := fn(payload); err != nil {
			t.Errorf("%s: full payload rejected: %v", name, err)
		}
		// envelope-chunk's trailing bytes ARE the data section, so only
		// cuts inside the fixed prefix are malformed.
		limit := len(payload)
		if name == "envelope-chunk" {
			limit = 4 // u16 tenant len + 1-byte tenant + kind byte
		}
		for cut := 0; cut < limit; cut++ {
			err := fn(payload[:cut])
			if err == nil {
				// A cut that still parses must be an empty-tenant reject
				// case already covered; cluster payloads all have required
				// fields, so any nil here is a real hole.
				t.Errorf("%s: truncation at %d/%d accepted", name, cut, len(payload))
			} else if !errors.Is(err, ErrBadFrame) {
				t.Errorf("%s: truncation at %d returned %v, not ErrBadFrame", name, cut, err)
			}
		}
	}
}
