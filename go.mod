module github.com/causaliot/causaliot

go 1.22
