// Package netchaos is the deterministic network-chaos harness for the wire
// stack: a seeded TCP proxy that sits between a wire client and server and
// injects connection-level faults — refused connects, connections killed
// mid-frame, corrupted length prefixes, slow-byte trickle — plus manual
// partition/heal and kill-all controls for scripted flaps.
//
// Same philosophy as internal/faults: the same seed yields the same fault
// plan, so a chaos test that fails replays bit-for-bit. Faults are
// frame-aligned (the proxy parses the upstream length prefixes), which
// makes every injection detectable by construction: a kill lands mid-frame
// (truncation, never a silently dropped whole frame the client thinks was
// delivered), and a corrupted length sets the top bit, so the server
// refuses it as oversize instead of misparsing payload bytes into a
// plausible — and silently wrong — event.
package netchaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Kind names one per-connection fault.
type Kind int

const (
	// Clean proxies the connection faithfully.
	Clean Kind = iota
	// Refuse closes the client connection immediately on accept, before
	// any byte flows — the connection-refused shape.
	Refuse
	// Kill forwards frames faithfully until the scheduled frame, then
	// forwards only half of that frame's body and cuts both directions —
	// the truncate-mid-frame shape.
	Kill
	// Corrupt forwards until the scheduled frame, then sets the top bit
	// of its length prefix (guaranteed oversize, guaranteed detection)
	// and cuts the connection.
	Corrupt
	// Trickle forwards the scheduled frame one byte at a time with a
	// small delay per byte — the slow-byte shape that exercises
	// fragmented reads and idle deadlines — then continues cleanly.
	Trickle
)

func (k Kind) String() string {
	switch k {
	case Clean:
		return "clean"
	case Refuse:
		return "refuse"
	case Kill:
		return "kill"
	case Corrupt:
		return "corrupt"
	case Trickle:
		return "trickle"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Weights are the per-connection fault probabilities; the remainder is
// Clean. The sum must not exceed 1.
type Weights struct {
	Refuse  float64
	Kill    float64
	Corrupt float64
	Trickle float64
}

// Config tunes a chaos proxy.
type Config struct {
	// Target is the real server address proxied to. Required.
	Target string
	// Seed draws every per-connection fault plan; the same seed and
	// accept order reproduce the same faults.
	Seed int64
	// Weights are the per-connection fault probabilities. The zero value
	// proxies everything cleanly.
	Weights Weights
	// MinFrames and MaxFrames bound the frame index a Kill/Corrupt/
	// Trickle fault triggers at, drawn uniformly per connection.
	// Defaults: 100 and 400 — a fault every few hundred events.
	MinFrames int
	MaxFrames int
	// TrickleDelay is the per-byte delay of a Trickle fault. Defaults to
	// 100µs.
	TrickleDelay time.Duration
	// MaxFrame bounds the upstream frame size the proxy will parse;
	// defaults to 1MiB (the wire default). Larger frames kill the
	// connection.
	MaxFrame int
}

func (c Config) withDefaults() Config {
	if c.MinFrames <= 0 {
		c.MinFrames = 100
	}
	if c.MaxFrames <= c.MinFrames {
		c.MaxFrames = c.MinFrames + 300
	}
	if c.TrickleDelay <= 0 {
		c.TrickleDelay = 100 * time.Microsecond
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 20
	}
	return c
}

// Stats snapshots a proxy's counters.
type Stats struct {
	// Conns counts accepted connections; Refused/Killed/Corrupted/
	// Trickled the connections whose scheduled fault fired.
	Conns     uint64
	Refused   uint64
	Killed    uint64
	Corrupted uint64
	Trickled  uint64
	// PartitionDrops counts connections cut or refused by a manual
	// Partition.
	PartitionDrops uint64
	// FramesUp counts client→server frames forwarded intact.
	FramesUp uint64
}

// plan is one connection's scheduled fault.
type plan struct {
	kind Kind
	at   int // frame index the fault triggers at
}

// Proxy is a deterministic chaos TCP proxy. Start it with New, point wire
// clients at Addr(), and drive scripted outages with Partition/Heal/
// KillAll. Close stops the listener and cuts every live link.
type Proxy struct {
	cfg Config
	ln  net.Listener

	mu          sync.Mutex
	links       map[*link]struct{}
	partitioned bool
	connIdx     int64
	closed      bool

	conns          atomic.Uint64
	refused        atomic.Uint64
	killed         atomic.Uint64
	corrupted      atomic.Uint64
	trickled       atomic.Uint64
	partitionDrops atomic.Uint64
	framesUp       atomic.Uint64

	wg sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client, server net.Conn
	once           sync.Once
}

func (l *link) cut() {
	l.once.Do(func() {
		l.client.Close()
		if l.server != nil {
			l.server.Close()
		}
	})
}

// New starts a chaos proxy on a fresh loopback port.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, errors.New("netchaos: empty target")
	}
	w := cfg.Weights
	if w.Refuse < 0 || w.Kill < 0 || w.Corrupt < 0 || w.Trickle < 0 {
		return nil, errors.New("netchaos: negative fault weight")
	}
	if sum := w.Refuse + w.Kill + w.Corrupt + w.Trickle; sum > 1 {
		return nil, fmt.Errorf("netchaos: fault weights sum to %v > 1", sum)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg.withDefaults(), ln: ln, links: make(map[*link]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:          p.conns.Load(),
		Refused:        p.refused.Load(),
		Killed:         p.killed.Load(),
		Corrupted:      p.corrupted.Load(),
		Trickled:       p.trickled.Load(),
		PartitionDrops: p.partitionDrops.Load(),
		FramesUp:       p.framesUp.Load(),
	}
}

// Partition cuts every live link and refuses new connections until Heal —
// the network is gone, not just one connection.
func (p *Proxy) Partition() {
	p.mu.Lock()
	p.partitioned = true
	links := p.snapshotLocked()
	p.mu.Unlock()
	for _, l := range links {
		p.partitionDrops.Add(1)
		l.cut()
	}
}

// Heal ends a Partition; new connections flow again.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.partitioned = false
	p.mu.Unlock()
}

// KillAll cuts every live link once (a flap) without refusing the
// reconnects that follow.
func (p *Proxy) KillAll() {
	p.mu.Lock()
	links := p.snapshotLocked()
	p.mu.Unlock()
	for _, l := range links {
		l.cut()
	}
}

func (p *Proxy) snapshotLocked() []*link {
	out := make([]*link, 0, len(p.links))
	for l := range p.links {
		out = append(out, l)
	}
	return out
}

// Close stops the proxy and cuts every live link. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	links := p.snapshotLocked()
	p.mu.Unlock()
	p.ln.Close()
	for _, l := range links {
		l.cut()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		nc, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return
		}
		if p.partitioned {
			p.mu.Unlock()
			p.partitionDrops.Add(1)
			nc.Close()
			continue
		}
		idx := p.connIdx
		p.connIdx++
		p.mu.Unlock()
		pl := p.planFor(idx)
		if pl.kind == Refuse {
			p.refused.Add(1)
			nc.Close()
			continue
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(nc, pl)
		}()
	}
}

// planFor draws connection idx's fault plan. Derivation is per-index, so
// the plan sequence is stable regardless of goroutine scheduling between
// accepts.
func (p *Proxy) planFor(idx int64) plan {
	mix := uint64(p.cfg.Seed) ^ uint64(idx+1)*0x9E3779B97F4A7C15
	rng := rand.New(rand.NewSource(int64(mix)))
	w := p.cfg.Weights
	r := rng.Float64()
	var k Kind
	switch {
	case r < w.Refuse:
		k = Refuse
	case r < w.Refuse+w.Kill:
		k = Kill
	case r < w.Refuse+w.Kill+w.Corrupt:
		k = Corrupt
	case r < w.Refuse+w.Kill+w.Corrupt+w.Trickle:
		k = Trickle
	default:
		k = Clean
	}
	at := p.cfg.MinFrames + rng.Intn(p.cfg.MaxFrames-p.cfg.MinFrames)
	return plan{kind: k, at: at}
}

// serve proxies one client connection: downstream (server→client) is
// copied faithfully; upstream is forwarded frame-aligned so scheduled
// faults land at precise, reproducible points.
func (p *Proxy) serve(client net.Conn, pl plan) {
	server, err := net.Dial("tcp", p.cfg.Target)
	if err != nil {
		client.Close()
		return
	}
	l := &link{client: client, server: server}
	p.mu.Lock()
	if p.closed || p.partitioned {
		p.mu.Unlock()
		l.cut()
		return
	}
	p.links[l] = struct{}{}
	p.mu.Unlock()
	defer func() {
		l.cut()
		p.mu.Lock()
		delete(p.links, l)
		p.mu.Unlock()
	}()

	done := make(chan struct{})
	go func() {
		io.Copy(client, server) // downstream: alarms, acks, nacks
		l.cut()
		close(done)
	}()
	p.forwardUpstream(l, pl)
	l.cut()
	<-done
}

// forwardUpstream copies client→server frame by frame, firing the
// scheduled fault at its frame index.
func (p *Proxy) forwardUpstream(l *link, pl plan) {
	var hdr [4]byte
	buf := make([]byte, 0, 4096)
	for frameIdx := 0; ; frameIdx++ {
		if _, err := io.ReadFull(l.client, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[:]))
		if n < 1 || n > p.cfg.MaxFrame {
			return
		}
		if cap(buf) < n {
			buf = make([]byte, n)
		}
		body := buf[:n]
		if _, err := io.ReadFull(l.client, body); err != nil {
			return
		}
		if frameIdx == pl.at {
			switch pl.kind {
			case Kill:
				// Truncate mid-frame: the server sees a cut inside the
				// body; the client believes the frame was sent.
				p.killed.Add(1)
				l.server.Write(hdr[:])
				l.server.Write(body[:n/2])
				return
			case Corrupt:
				// Oversize length prefix: detected at the header, the
				// payload bytes never reach the server's parser.
				p.corrupted.Add(1)
				bad := hdr
				bad[0] |= 0x80
				l.server.Write(bad[:])
				return
			case Trickle:
				p.trickled.Add(1)
				if _, err := l.server.Write(hdr[:]); err != nil {
					return
				}
				for i := range body {
					if _, err := l.server.Write(body[i : i+1]); err != nil {
						return
					}
					time.Sleep(p.cfg.TrickleDelay)
				}
				p.framesUp.Add(1)
				continue
			}
		}
		if _, err := l.server.Write(hdr[:]); err != nil {
			return
		}
		if _, err := l.server.Write(body); err != nil {
			return
		}
		p.framesUp.Add(1)
	}
}
