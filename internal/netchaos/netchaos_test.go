package netchaos

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts frame-shaped payloads and echoes them back verbatim,
// standing in for the wire server.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func frameOf(payload string) []byte {
	b := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	return append(b, payload...)
}

// TestPlanDeterminism: the same seed yields the same per-connection fault
// plans, independent of when each plan is drawn.
func TestPlanDeterminism(t *testing.T) {
	cfg := Config{Target: "x", Seed: 42, Weights: Weights{Refuse: 0.1, Kill: 0.3, Corrupt: 0.2, Trickle: 0.2}}.withDefaults()
	a := &Proxy{cfg: cfg}
	b := &Proxy{cfg: cfg}
	kinds := map[Kind]bool{}
	for i := int64(0); i < 64; i++ {
		pa, pb := a.planFor(i), b.planFor(i)
		if pa != pb {
			t.Fatalf("conn %d: plan %+v != %+v", i, pa, pb)
		}
		if pa.at < cfg.MinFrames || pa.at >= cfg.MaxFrames {
			t.Fatalf("conn %d: fault frame %d outside [%d,%d)", i, pa.at, cfg.MinFrames, cfg.MaxFrames)
		}
		kinds[pa.kind] = true
	}
	for _, k := range []Kind{Clean, Refuse, Kill, Corrupt, Trickle} {
		if !kinds[k] {
			t.Errorf("64 draws never produced %v", k)
		}
	}
	other := &Proxy{cfg: cfg}
	other.cfg.Seed = 43
	diff := 0
	for i := int64(0); i < 64; i++ {
		if a.planFor(i) != other.planFor(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical plans")
	}
}

// TestCleanProxyPassesFrames: with no weights, frames round-trip through
// the proxy byte-for-byte.
func TestCleanProxyPassesFrames(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Config{Target: addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	msg := frameOf("hello through the chaos")
	if _, err := nc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(nc, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo mismatch: %q != %q", got, msg)
	}
	if s := p.Stats(); s.Conns != 1 || s.FramesUp != 1 {
		t.Errorf("stats = %+v, want 1 conn / 1 frame", s)
	}
}

// TestKillTruncatesMidFrame: a Kill plan forwards only part of the
// scheduled frame's body, so the server sees a mid-frame cut.
func TestKillTruncatesMidFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	gotc := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		all, _ := io.ReadAll(nc)
		gotc <- all
	}()
	// Kill weight 1 with a [1,2) frame window pins the fault: frame 0
	// passes intact, frame 1 is truncated halfway through its body.
	p, err := New(Config{Target: ln.Addr().String(), Seed: 7, Weights: Weights{Kill: 1}, MinFrames: 1, MaxFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f0, f1 := frameOf("frame-zero"), frameOf("frame-one!")
	nc.Write(f0)
	nc.Write(f1)
	select {
	case got := <-gotc:
		want := len(f0) + 4 + len("frame-one!")/2
		if len(got) != want {
			t.Fatalf("server received %d bytes, want truncation at %d", len(got), want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the truncated stream")
	}
	if s := p.Stats(); s.Killed != 1 {
		t.Errorf("killed = %d, want 1", s.Killed)
	}
}

// TestPartitionRefusesAndHeals: a partition cuts live links and refuses
// new ones; heal restores flow.
func TestPartitionRefusesAndHeals(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := New(Config{Target: addr, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := frameOf("pre-partition")
	nc.Write(msg)
	buf := make([]byte, len(msg))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	p.Partition()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read on a partitioned link succeeded")
	}
	nc.Close()
	// During the partition a fresh connection dies immediately.
	nc2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		nc2.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc2.Read(buf); err == nil {
			t.Fatal("read during partition succeeded")
		}
		nc2.Close()
	}
	p.Heal()
	nc3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc3.Close()
	nc3.Write(msg)
	nc3.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(nc3, buf); err != nil {
		t.Fatalf("post-heal echo failed: %v", err)
	}
	if s := p.Stats(); s.PartitionDrops == 0 {
		t.Error("partition dropped nothing")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil || !strings.Contains(err.Error(), "target") {
		t.Errorf("empty target error = %v", err)
	}
	if _, err := New(Config{Target: "x", Weights: Weights{Kill: 0.9, Refuse: 0.2}}); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Errorf("overweight error = %v", err)
	}
	if _, err := New(Config{Target: "x", Weights: Weights{Kill: -0.1}}); err == nil {
		t.Error("negative weight accepted")
	}
	var kindNames []string
	for k := Clean; k <= Trickle; k++ {
		kindNames = append(kindNames, k.String())
	}
	if strings.Contains(strings.Join(kindNames, ","), "kind(") {
		t.Errorf("unnamed kind in %v", kindNames)
	}
}

// TestCorruptOversizesLength: the corrupted header's length field must
// exceed any sane frame cap (top bit set), so a wire server detects it at
// the header instead of misparsing payload bytes.
func TestCorruptOversizesLength(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	gotc := make(chan []byte, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		all, _ := io.ReadAll(nc)
		gotc <- all
	}()
	p, err := New(Config{Target: ln.Addr().String(), Seed: 3, Weights: Weights{Corrupt: 1}, MinFrames: 1, MaxFrames: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	nc, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	f0 := frameOf("ok")
	nc.Write(f0)
	nc.Write(frameOf("corrupt-me"))
	select {
	case got := <-gotc:
		if len(got) != len(f0)+4 {
			t.Fatalf("server received %d bytes, want intact frame + corrupted header (%d)", len(got), len(f0)+4)
		}
		n := binary.BigEndian.Uint32(got[len(f0):])
		if n>>31 != 1 {
			t.Fatalf("corrupted length = %d, top bit not set", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the stream")
	}
	if s := p.Stats(); s.Corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", s.Corrupted)
	}
}
