// Package preprocess implements the Event Preprocessor of paper §V-A. It
// sanitizes logged device events (dropping duplicated state reports and
// three-sigma outliers), unifies the diverse value types into binary device
// states (responsive numeric states threshold at zero; ambient numeric
// states are discretized with Jenks natural breaks into Low/High), derives
// the IoT time series, and selects the maximum time lag τ = d/v from the
// average event interval v and the feedback duration d (60 s by default).
package preprocess

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/causaliot/causaliot/internal/event"
	"github.com/causaliot/causaliot/internal/stats"
	"github.com/causaliot/causaliot/internal/timeseries"
)

// DefaultMaxDuration is the paper's feedback window d: long enough to wait
// for any interaction feedback (e.g. automation execution) after a device
// operation.
const DefaultMaxDuration = 60 * time.Second

// Sentinel errors for runtime value unification. Stream callers match them
// with errors.Is to tell skippable events (a report from a device outside
// the inventory, a non-finite sensor glitch) from fatal misconfiguration.
var (
	// ErrUnknownDevice marks an event from a device not in the inventory.
	ErrUnknownDevice = errors.New("preprocess: unknown device")
	// ErrValueOutOfRange marks a reading outside the representable range
	// (NaN or ±Inf) that no unification rule can classify.
	ErrValueOutOfRange = errors.New("preprocess: value out of range")
)

// DefaultTauMax bounds the selected lag; a large τ inflates the DIG node
// count and the cost of skeleton construction (paper §V-D).
const DefaultTauMax = 6

// Config controls preprocessing.
type Config struct {
	// MaxDuration is the feedback duration d used to pick τ = d/v.
	// Defaults to DefaultMaxDuration.
	MaxDuration time.Duration
	// TauMax clamps the selected τ. Defaults to DefaultTauMax.
	TauMax int
	// TauOverride, when positive, bypasses τ selection entirely.
	TauOverride int
	// InitialState optionally fixes the binary state each device starts
	// in; missing devices start at 0.
	InitialState map[string]int
	// KeepOutliers disables the three-sigma filter (useful when feeding
	// the detector raw test traces in which injected anomalies must
	// survive preprocessing).
	KeepOutliers bool
}

func (c Config) withDefaults() Config {
	if c.MaxDuration <= 0 {
		c.MaxDuration = DefaultMaxDuration
	}
	if c.TauMax <= 0 {
		c.TauMax = DefaultTauMax
	}
	return c
}

// Report summarizes what preprocessing did.
type Report struct {
	RawEvents         int
	OutliersDropped   int
	DuplicatesDropped int
	KeptEvents        int
	AverageInterval   time.Duration
	Tau               int
}

// Result is the preprocessed dataset.
type Result struct {
	Series *timeseries.Series
	Tau    int
	Report Report
}

// Preprocessor unifies raw device events into binary states. It learns the
// per-device discretization thresholds from a training log and can then
// unify runtime events consistently (used by the Event Monitor).
type Preprocessor struct {
	cfg      Config
	devices  map[string]event.Device
	registry *timeseries.Registry
	// thresholds maps ambient-numeric device names to their Jenks
	// Low/High break; values above the threshold unify to 1.
	thresholds map[string]float64
	// sigma maps numeric device names to the (mean, std) used by the
	// three-sigma filter.
	sigma  map[string][2]float64
	fitted bool
}

// New creates a preprocessor for the given device inventory.
func New(devices []event.Device, cfg Config) (*Preprocessor, error) {
	if len(devices) == 0 {
		return nil, errors.New("preprocess: no devices")
	}
	names := make([]string, 0, len(devices))
	byName := make(map[string]event.Device, len(devices))
	for _, d := range devices {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[d.Name]; dup {
			return nil, fmt.Errorf("preprocess: duplicate device %q", d.Name)
		}
		byName[d.Name] = d
		names = append(names, d.Name)
	}
	reg, err := timeseries.NewRegistry(names)
	if err != nil {
		return nil, err
	}
	return &Preprocessor{
		cfg:        cfg.withDefaults(),
		devices:    byName,
		registry:   reg,
		thresholds: make(map[string]float64),
		sigma:      make(map[string][2]float64),
	}, nil
}

// Registry returns the device registry shared with the produced series.
func (p *Preprocessor) Registry() *timeseries.Registry { return p.registry }

// Device returns the device definition for name.
func (p *Preprocessor) Device(name string) (event.Device, bool) {
	d, ok := p.devices[name]
	return d, ok
}

// Threshold returns the learned Low/High break for an ambient-numeric
// device. The second return is false until Process has run or when the
// device is not ambient numeric.
func (p *Preprocessor) Threshold(name string) (float64, bool) {
	v, ok := p.thresholds[name]
	return v, ok
}

// Thresholds exports every learned ambient discretization break (a copy),
// for model persistence.
func (p *Preprocessor) Thresholds() map[string]float64 {
	out := make(map[string]float64, len(p.thresholds))
	for k, v := range p.thresholds {
		out[k] = v
	}
	return out
}

// RestoreThresholds installs previously learned ambient breaks, marking the
// preprocessor fitted so UnifyValue works without re-running Process.
func (p *Preprocessor) RestoreThresholds(thresholds map[string]float64) error {
	for name := range thresholds {
		dev, ok := p.devices[name]
		if !ok {
			return fmt.Errorf("preprocess: threshold for unknown device %q", name)
		}
		if dev.Attribute.Class != event.AmbientNumeric {
			return fmt.Errorf("preprocess: threshold for non-ambient device %q", name)
		}
	}
	for name, v := range thresholds {
		p.thresholds[name] = v
	}
	p.fitted = true
	return nil
}

// Process sanitizes and unifies a training log and derives the time series
// and τ. It must be called before UnifyValue.
func (p *Preprocessor) Process(log event.Log) (*Result, error) {
	if len(log) == 0 {
		return nil, errors.New("preprocess: empty log")
	}
	sorted := make(event.Log, len(log))
	copy(sorted, log)
	sorted.SortByTime()

	report := Report{RawEvents: len(sorted)}

	// Pass 1: learn three-sigma bounds and Jenks thresholds from the raw
	// numeric readings.
	numeric := make(map[string][]float64)
	for _, e := range sorted {
		dev, ok := p.devices[e.Device]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownDevice, e.Device)
		}
		if dev.Attribute.Class != event.Binary {
			numeric[e.Device] = append(numeric[e.Device], e.Value)
		}
	}
	for name, vals := range numeric {
		mean, std := stats.MeanStd(vals)
		p.sigma[name] = [2]float64{mean, std}
	}
	for name, vals := range numeric {
		if p.devices[name].Attribute.Class != event.AmbientNumeric {
			continue
		}
		inliers := p.filterOutliers(name, vals)
		if len(inliers) < 2 {
			inliers = vals
		}
		thr, err := stats.JenksThreshold(inliers)
		if err != nil {
			return nil, fmt.Errorf("preprocess: jenks for %q: %w", name, err)
		}
		p.thresholds[name] = thr
	}
	p.fitted = true

	// Pass 2: sanitize (outliers, duplicates) and unify.
	last := make(map[string]int, len(p.devices))
	for name := range p.devices {
		last[name] = p.initialOf(name)
	}
	var steps []timeseries.Step
	var kept event.Log
	for _, e := range sorted {
		dev := p.devices[e.Device]
		if dev.Attribute.Class != event.Binary && !p.cfg.KeepOutliers {
			ms := p.sigma[e.Device]
			if ms[1] > 0 && !stats.WithinThreeSigma(e.Value, ms[0], ms[1]) {
				report.OutliersDropped++
				continue
			}
		}
		state, err := p.UnifyValue(e.Device, e.Value)
		if err != nil {
			return nil, err
		}
		if state == last[e.Device] {
			report.DuplicatesDropped++
			continue
		}
		last[e.Device] = state
		idx, _ := p.registry.Index(e.Device)
		steps = append(steps, timeseries.Step{Device: idx, Value: state, Time: e.Timestamp})
		kept = append(kept, e)
	}
	if len(steps) == 0 {
		return nil, errors.New("preprocess: sanitation removed every event")
	}
	report.KeptEvents = len(steps)

	initial := make(timeseries.State, p.registry.Len())
	for i := 0; i < p.registry.Len(); i++ {
		initial[i] = p.initialOf(p.registry.Name(i))
	}
	series, err := timeseries.FromSteps(p.registry, initial, steps)
	if err != nil {
		return nil, err
	}

	tau := p.cfg.TauOverride
	report.AverageInterval = kept.AverageInterval()
	if tau <= 0 {
		tau = p.selectTau(report.AverageInterval)
	}
	report.Tau = tau
	return &Result{Series: series, Tau: tau, Report: report}, nil
}

// UnifyValue converts a raw device reading into the unified binary state
// using the thresholds learned during Process. Binary attributes map any
// non-zero value to 1; responsive numeric attributes threshold at zero
// (Idle/Working); ambient numeric attributes threshold at the Jenks break
// (Low/High).
func (p *Preprocessor) UnifyValue(device string, value float64) (int, error) {
	dev, ok := p.devices[device]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownDevice, device)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("%w: %q reported %v", ErrValueOutOfRange, device, value)
	}
	switch dev.Attribute.Class {
	case event.Binary:
		if value != 0 {
			return 1, nil
		}
		return 0, nil
	case event.ResponsiveNumeric:
		if value > 0 {
			return 1, nil
		}
		return 0, nil
	case event.AmbientNumeric:
		if !p.fitted {
			return 0, fmt.Errorf("preprocess: ambient device %q unified before Process", device)
		}
		thr, ok := p.thresholds[device]
		if !ok {
			return 0, fmt.Errorf("preprocess: no threshold learned for ambient device %q", device)
		}
		if value > thr {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("preprocess: device %q has invalid class %v", device, dev.Attribute.Class)
	}
}

// Unifier is the frozen per-index form of the unification rules: one
// registry-ordered slice of (class, threshold) pairs, so runtime value
// unification is an array index and a compare instead of name-keyed map
// lookups per event. Build it with CompileUnifier after fitting; it is
// immutable and safe for concurrent readers.
type Unifier struct {
	reg        *timeseries.Registry
	classes    []event.Class
	thresholds []float64
	haveThr    []bool
	fitted     bool
}

// CompileUnifier freezes the current unification rules (device classes and
// learned ambient thresholds) into their index-keyed serving form. It must
// be rebuilt if Process or RestoreThresholds learns new thresholds.
func (p *Preprocessor) CompileUnifier() *Unifier {
	n := p.registry.Len()
	u := &Unifier{
		reg:        p.registry,
		classes:    make([]event.Class, n),
		thresholds: make([]float64, n),
		haveThr:    make([]bool, n),
		fitted:     p.fitted,
	}
	for i := 0; i < n; i++ {
		name := p.registry.Name(i)
		u.classes[i] = p.devices[name].Attribute.Class
		if thr, ok := p.thresholds[name]; ok {
			u.thresholds[i] = thr
			u.haveThr[i] = true
		}
	}
	return u
}

// Unify converts a raw reading of the device at registry index idx into the
// unified binary state, with the same rules and sentinel errors as
// UnifyValue but no per-event map lookups.
func (u *Unifier) Unify(idx int, value float64) (int, error) {
	if idx < 0 || idx >= len(u.classes) {
		return 0, fmt.Errorf("%w (index %d)", ErrUnknownDevice, idx)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return 0, fmt.Errorf("%w: %q reported %v", ErrValueOutOfRange, u.reg.Name(idx), value)
	}
	switch u.classes[idx] {
	case event.Binary:
		if value != 0 {
			return 1, nil
		}
		return 0, nil
	case event.ResponsiveNumeric:
		if value > 0 {
			return 1, nil
		}
		return 0, nil
	case event.AmbientNumeric:
		if !u.fitted {
			return 0, fmt.Errorf("preprocess: ambient device %q unified before Process", u.reg.Name(idx))
		}
		if !u.haveThr[idx] {
			return 0, fmt.Errorf("preprocess: no threshold learned for ambient device %q", u.reg.Name(idx))
		}
		if value > u.thresholds[idx] {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("preprocess: device %q has invalid class %v", u.reg.Name(idx), u.classes[idx])
	}
}

func (p *Preprocessor) filterOutliers(name string, vals []float64) []float64 {
	ms := p.sigma[name]
	if ms[1] == 0 {
		return vals
	}
	out := make([]float64, 0, len(vals))
	for _, v := range vals {
		if stats.WithinThreeSigma(v, ms[0], ms[1]) {
			out = append(out, v)
		}
	}
	return out
}

func (p *Preprocessor) initialOf(name string) int {
	if p.cfg.InitialState == nil {
		return 0
	}
	if v := p.cfg.InitialState[name]; v == 1 {
		return 1
	}
	return 0
}

func (p *Preprocessor) selectTau(avg time.Duration) int {
	if avg <= 0 {
		return 1
	}
	tau := int(math.Round(float64(p.cfg.MaxDuration) / float64(avg)))
	if tau < 1 {
		tau = 1
	}
	if tau > p.cfg.TauMax {
		tau = p.cfg.TauMax
	}
	return tau
}
