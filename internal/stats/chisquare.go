package stats

import "errors"

// CITester is a conditional-independence test. Constraint-based causal
// discovery "can encode various independence test methods to handle
// different types of data" (paper §VII-A); TemporalPC accepts any
// implementation. GSquareTester is the default (the paper's choice for
// binary states); PearsonChiSquareTester is the classic alternative.
type CITester interface {
	// Test evaluates the null hypothesis X ⊥ Y | Z.
	Test(x, y Sample, zs []Sample) (CIResult, error)
}

var (
	_ CITester = GSquareTester{}
	_ CITester = PearsonChiSquareTester{}
)

// PearsonChiSquareTester runs Pearson's X² conditional-independence test:
// X² = Σ (observed − expected)² / expected over the stratified contingency
// tables, with the same degrees of freedom as the G² test. It is
// asymptotically equivalent to G² but weighs sparse cells differently
// (X² is more conservative on small expected counts).
type PearsonChiSquareTester struct {
	// MinObsPerDOF mirrors GSquareTester's small-sample heuristic.
	MinObsPerDOF int
}

// Test implements CITester.
func (t PearsonChiSquareTester) Test(x, y Sample, zs []Sample) (CIResult, error) {
	if err := x.Validate(); err != nil {
		return CIResult{}, err
	}
	if err := y.Validate(); err != nil {
		return CIResult{}, err
	}
	n := len(x.Values)
	if len(y.Values) != n {
		return CIResult{}, ErrSampleMismatch
	}
	zCard := 1
	for _, z := range zs {
		if err := z.Validate(); err != nil {
			return CIResult{}, err
		}
		if len(z.Values) != n {
			return CIResult{}, ErrSampleMismatch
		}
		if zCard > 1<<22 {
			return CIResult{}, errors.New("stats: conditioning set cardinality overflow")
		}
		zCard *= z.Arity
	}
	if n == 0 {
		return CIResult{}, ErrEmpty
	}

	dof := (x.Arity - 1) * (y.Arity - 1) * zCard
	if dof < 1 {
		dof = 1
	}
	res := CIResult{DOF: dof, Reliable: true}
	if t.MinObsPerDOF > 0 && n < t.MinObsPerDOF*dof {
		res.Reliable = false
		res.PValue = 1
		return res, nil
	}

	xy := x.Arity * y.Arity
	joint := make([]float64, zCard*xy)
	for i := 0; i < n; i++ {
		zIdx := 0
		for _, z := range zs {
			zIdx = zIdx*z.Arity + z.Values[i]
		}
		joint[zIdx*xy+x.Values[i]*y.Arity+y.Values[i]]++
	}

	var x2 float64
	nx := make([]float64, x.Arity)
	ny := make([]float64, y.Arity)
	for zIdx := 0; zIdx < zCard; zIdx++ {
		cells := joint[zIdx*xy : (zIdx+1)*xy]
		var nz float64
		for i := range nx {
			nx[i] = 0
		}
		for j := range ny {
			ny[j] = 0
		}
		for i := 0; i < x.Arity; i++ {
			for j := 0; j < y.Arity; j++ {
				c := cells[i*y.Arity+j]
				nx[i] += c
				ny[j] += c
				nz += c
			}
		}
		if nz == 0 {
			continue
		}
		for i := 0; i < x.Arity; i++ {
			for j := 0; j < y.Arity; j++ {
				expected := nx[i] * ny[j] / nz
				if expected == 0 {
					continue
				}
				d := cells[i*y.Arity+j] - expected
				x2 += d * d / expected
			}
		}
	}
	res.Statistic = x2
	res.PValue = ChiSquareSurvival(x2, dof)
	return res, nil
}
