package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaPExponentialSpecialCase(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 7, 20} {
		for _, x := range []float64{0.1, 1, 5, 25, 100} {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-9) {
				t.Errorf("P(%v,%v)+Q(%v,%v) = %v, want 1", a, x, a, x, p+q)
			}
		}
	}
}

func TestRegularizedGammaDomain(t *testing.T) {
	if !math.IsNaN(RegularizedGammaP(-1, 1)) {
		t.Error("expected NaN for a<=0")
	}
	if !math.IsNaN(RegularizedGammaQ(1, -1)) {
		t.Error("expected NaN for x<0")
	}
	if got := RegularizedGammaP(3, 0); got != 0 {
		t.Errorf("P(3,0) = %v, want 0", got)
	}
	if got := RegularizedGammaQ(3, 0); got != 1 {
		t.Errorf("Q(3,0) = %v, want 1", got)
	}
}

func TestChiSquareSurvivalCriticalValues(t *testing.T) {
	// Textbook critical values of the chi-square distribution.
	tests := []struct {
		x    float64
		dof  int
		want float64
	}{
		{3.841, 1, 0.05},
		{6.635, 1, 0.01},
		{10.828, 1, 0.001},
		{5.991, 2, 0.05},
		{9.210, 2, 0.01},
		{7.815, 3, 0.05},
		{18.307, 10, 0.05},
		{23.209, 10, 0.01},
	}
	for _, tt := range tests {
		if got := ChiSquareSurvival(tt.x, tt.dof); !almostEqual(got, tt.want, 5e-4) {
			t.Errorf("ChiSquareSurvival(%v, %d) = %v, want ~%v", tt.x, tt.dof, got, tt.want)
		}
	}
}

func TestChiSquareSurvivalEdges(t *testing.T) {
	if got := ChiSquareSurvival(0, 5); got != 1 {
		t.Errorf("survival at 0 = %v, want 1", got)
	}
	if !math.IsNaN(ChiSquareSurvival(-1, 1)) {
		t.Error("expected NaN for negative statistic")
	}
	if !math.IsNaN(ChiSquareSurvival(1, 0)) {
		t.Error("expected NaN for dof < 1")
	}
	if got := ChiSquareSurvival(1e6, 1); got > 1e-12 {
		t.Errorf("huge statistic should have ~0 p-value, got %v", got)
	}
}

// Property: the survival function is monotone decreasing in x and lies in
// [0, 1].
func TestChiSquareSurvivalMonotoneProperty(t *testing.T) {
	f := func(rawX1, rawX2 float64, rawDOF uint8) bool {
		dof := int(rawDOF%30) + 1
		x1 := math.Abs(math.Mod(rawX1, 200))
		x2 := math.Abs(math.Mod(rawX2, 200))
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		s1 := ChiSquareSurvival(x1, dof)
		s2 := ChiSquareSurvival(x2, dof)
		return s1 >= s2-1e-9 && s1 >= 0 && s1 <= 1 && s2 >= 0 && s2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
