package wire

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// SessionState is a SessionClient's connection health, reported through
// OnStateChange.
type SessionState int

const (
	// StateConnected: a live connection is attached to the session.
	StateConnected SessionState = iota
	// StateDegraded: the connection died; reconnect attempts are running
	// and Send banks events in the window meanwhile.
	StateDegraded
	// StateGaveUp: MaxAttempts consecutive reconnects failed; the client
	// is terminally down and every later Send returns ErrSessionGaveUp.
	StateGaveUp
)

func (s SessionState) String() string {
	switch s {
	case StateConnected:
		return "connected"
	case StateDegraded:
		return "degraded"
	case StateGaveUp:
		return "gave-up"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// SessionConfig tunes a fault-tolerant session client.
type SessionConfig struct {
	// Addr is the server address; Session the durable session name
	// (scoped to the tenant). Both required.
	Addr    string
	Session string
	// Client carries the per-connection settings (token, tenant, frame
	// limit, Nack/alarm callbacks). Its Session/AlarmIdx/OnAck/
	// OnSessionAlarm fields are owned by the SessionClient and must be
	// left zero; OnAlarm receives session alarms with the index stripped.
	Client ClientConfig
	// Window caps the ring of sent-but-unacknowledged events held for
	// retransmit. A full window surfaces as ErrSendWindowFull — typed
	// backpressure, never silent shedding. Defaults to 1024.
	Window int
	// MaxAttempts is the number of consecutive failed reconnect attempts
	// before the client gives up (StateGaveUp, sticky ErrSessionGaveUp).
	// <= 0 defaults to 8.
	MaxAttempts int
	// BackoffMin and BackoffMax bound the capped exponential backoff
	// between reconnect attempts (first retry waits ~BackoffMin, each
	// later one doubles, capped at BackoffMax, plus up to 50% jitter).
	// Defaults: 50ms and 5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// JitterSeed makes the backoff jitter deterministic for tests; 0
	// derives a fixed default (jitter exists to de-synchronize fleets,
	// determinism within one client is harmless).
	JitterSeed int64
	// OnStateChange observes connected/degraded/gave-up transitions.
	// Called from the reconnect goroutine (and once from Open for the
	// initial connect); must not call back into the SessionClient's
	// Send/Close.
	OnStateChange func(SessionState)
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	return c
}

// SessionStats snapshots a SessionClient's fault-tolerance counters.
type SessionStats struct {
	// Reconnects counts successful resumes after a connection death;
	// Attempts every dial tried (including failures).
	Reconnects uint64
	Attempts   uint64
	// Retransmits counts events re-sent from the window on resume.
	Retransmits uint64
	// Acked is the server's cumulative decided watermark; Window the
	// events currently banked unacknowledged.
	Acked  uint64
	Window int
	// Recoveries holds one duration per successful reconnect: connection
	// death to resumed-and-retransmitted.
	Recoveries []time.Duration
	// State is the current session state.
	State SessionState
}

// SessionClient is a fault-tolerant wire producer: it wraps Client with a
// durable server-side session, capped-exponential-backoff reconnects, and
// a bounded retransmit window, so a dropped TCP connection is a recoverable
// event instead of silent data loss.
//
// Events must carry strictly increasing Seq (ErrSeqOrder otherwise) — the
// cumulative-ack protocol depends on it. Send accepts an event into the
// window and returns nil even while degraded (delivery happens on resume);
// a full window returns ErrSendWindowFull and the caller owns the retry.
//
// Send/Flush/Close/Stats are safe for concurrent use.
type SessionClient struct {
	cfg SessionConfig

	mu       sync.Mutex
	conn     *Client
	state    SessionState
	window   []Event // sent-but-unacked, ascending Seq
	lastSeq  uint64  // highest Seq accepted into the window
	acked    uint64  // server's cumulative decided watermark
	alarmIdx uint64  // highest session-alarm index received
	closed   bool
	gaveUp   bool

	reconnects  uint64
	attempts    uint64
	retransmits uint64
	recoveries  []time.Duration

	rng    *rand.Rand
	rngMu  sync.Mutex
	wg     sync.WaitGroup
	closeC chan struct{}
}

// OpenSession dials the first connection and attaches the session. The
// initial dial is synchronous: an unreachable server fails here rather
// than silently banking events.
func OpenSession(cfg SessionConfig) (*SessionClient, error) {
	cfg = cfg.withDefaults()
	if cfg.Session == "" {
		return nil, fmt.Errorf("%w: empty session name", ErrBadFrame)
	}
	s := &SessionClient{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.JitterSeed)),
		closeC: make(chan struct{}),
	}
	conn, err := s.dial()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.conn = conn
	s.acked, s.alarmIdx = conn.ResumeState()
	s.lastSeq = s.acked
	s.state = StateConnected
	s.mu.Unlock()
	s.notify(StateConnected)
	s.watch(conn)
	return s, nil
}

func (s *SessionClient) notify(st SessionState) {
	if s.cfg.OnStateChange != nil {
		s.cfg.OnStateChange(st)
	}
}

// dial opens one connection resuming the session at the current alarm
// watermark.
func (s *SessionClient) dial() (*Client, error) {
	s.mu.Lock()
	aidx := s.alarmIdx
	s.mu.Unlock()
	cc := s.cfg.Client
	cc.Session = s.cfg.Session
	cc.AlarmIdx = aidx
	cc.OnAck = s.onAck
	cc.OnSessionAlarm = s.onSessionAlarm
	cc.OnAlarm = nil // session connections receive FrameSessionAlarm only
	s.attemptsAdd()
	return Dial(s.cfg.Addr, cc)
}

func (s *SessionClient) attemptsAdd() {
	s.mu.Lock()
	s.attempts++
	s.mu.Unlock()
}

// onAck prunes the window up to the server's cumulative decided seq.
func (s *SessionClient) onAck(seq uint64) {
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
		s.pruneLocked(seq)
	}
	s.mu.Unlock()
}

func (s *SessionClient) pruneLocked(seq uint64) {
	keep := 0
	for ; keep < len(s.window) && s.window[keep].Seq <= seq; keep++ {
	}
	if keep > 0 {
		s.window = append(s.window[:0], s.window[keep:]...)
	}
}

// onSessionAlarm records the receipt index, confirms it to the server (so
// the replay ring stays small), and hands the alarm to the caller.
func (s *SessionClient) onSessionAlarm(idx uint64, a Alarm) {
	s.mu.Lock()
	if idx > s.alarmIdx {
		s.alarmIdx = idx
	}
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		conn.AckAlarm(idx)
	}
	if s.cfg.Client.OnAlarm != nil {
		s.cfg.Client.OnAlarm(a)
	}
}

// watch arms a goroutine that turns this connection's death into a
// reconnect loop.
func (s *SessionClient) watch(conn *Client) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		select {
		case <-conn.Done():
		case <-s.closeC:
			return
		}
		s.mu.Lock()
		if s.closed || s.conn != conn {
			s.mu.Unlock()
			return
		}
		s.conn = nil
		s.state = StateDegraded
		s.mu.Unlock()
		died := time.Now()
		s.notify(StateDegraded)
		s.reconnect(died)
	}()
}

// reconnect runs capped exponential backoff with jitter until a resume
// succeeds, the client closes, or MaxAttempts consecutive dials fail.
func (s *SessionClient) reconnect(died time.Time) {
	for attempt := 0; ; attempt++ {
		select {
		case <-time.After(s.backoff(attempt)):
		case <-s.closeC:
			return
		}
		conn, err := s.dial()
		if err != nil {
			if attempt+1 >= s.cfg.MaxAttempts {
				s.mu.Lock()
				s.gaveUp = true
				s.state = StateGaveUp
				s.mu.Unlock()
				s.notify(StateGaveUp)
				return
			}
			continue
		}
		// resume either installs the connection (its watcher owns the
		// next failure) or lost a race with Close; both end this loop.
		s.resume(conn, died)
		return
	}
}

// resume installs a fresh connection: prune the window to the server's
// watermark, retransmit the rest of the tail in order, and only then allow
// new Sends to interleave (the mutex covers the whole splice, so the
// server sees tail-then-new in sequence order).
func (s *SessionClient) resume(conn *Client, died time.Time) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	wm, _ := conn.ResumeState()
	if wm > s.acked {
		s.acked = wm
	}
	s.pruneLocked(s.acked)
	for _, ev := range s.window {
		s.retransmits++
		if err := conn.SendRetx(ev); err != nil {
			break // conn died mid-replay; its watcher will retry the rest
		}
	}
	conn.Flush()
	s.conn = conn
	s.state = StateConnected
	s.reconnects++
	s.recoveries = append(s.recoveries, time.Since(died))
	s.mu.Unlock()
	s.notify(StateConnected)
	s.watch(conn)
}

// backoff computes the wait before reconnect attempt n: BackoffMin doubled
// per attempt, capped at BackoffMax, plus up to 50% deterministic jitter.
func (s *SessionClient) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffMin
	for i := 0; i < attempt && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	s.rngMu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.rngMu.Unlock()
	return d + j
}

// Send accepts one event into the session window and, when a connection is
// live, streams it. Events must carry strictly increasing Seq. While
// degraded the event is banked and delivered on resume; a full window
// returns ErrSendWindowFull; after give-up, ErrSessionGaveUp.
func (s *SessionClient) Send(ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClientClosed
	}
	if s.gaveUp {
		return ErrSessionGaveUp
	}
	if ev.Seq <= s.lastSeq {
		return fmt.Errorf("%w: seq %d after %d", ErrSeqOrder, ev.Seq, s.lastSeq)
	}
	if len(s.window) >= s.cfg.Window {
		return ErrSendWindowFull
	}
	s.lastSeq = ev.Seq
	s.window = append(s.window, ev)
	if s.conn != nil {
		// A write error here is not a loss: the event is in the window
		// and the watcher's resume will retransmit it.
		s.conn.Send(ev)
	}
	return nil
}

// Flush pushes buffered frames on the live connection, if any.
func (s *SessionClient) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClientClosed
	}
	if s.gaveUp {
		return ErrSessionGaveUp
	}
	if s.conn != nil {
		s.conn.Flush()
	}
	return nil
}

// Ping sends a keepalive on the live connection (refreshing the server's
// idle deadline); a no-op while degraded.
func (s *SessionClient) Ping() error {
	s.mu.Lock()
	conn := s.conn
	s.mu.Unlock()
	if conn != nil {
		return conn.Ping()
	}
	return nil
}

// Err reports the sticky terminal state: ErrSessionGaveUp after reconnects
// were exhausted, ErrClientClosed after Close, nil otherwise.
func (s *SessionClient) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gaveUp {
		return ErrSessionGaveUp
	}
	if s.closed {
		return ErrClientClosed
	}
	return nil
}

// Stats snapshots the client's fault-tolerance counters.
func (s *SessionClient) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := make([]time.Duration, len(s.recoveries))
	copy(rec, s.recoveries)
	return SessionStats{
		Reconnects:  s.reconnects,
		Attempts:    s.attempts,
		Retransmits: s.retransmits,
		Acked:       s.acked,
		Window:      len(s.window),
		Recoveries:  rec,
		State:       s.state,
	}
}

// Pending reports how many events sit in the window unacknowledged.
func (s *SessionClient) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window)
}

// Close tears the session client down: stops the reconnect machinery,
// closes the live connection (a clean Bye retires the server-side session),
// and waits for the watcher goroutines. Idempotent.
func (s *SessionClient) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conn := s.conn
	s.conn = nil
	close(s.closeC)
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	s.wg.Wait()
	return nil
}