package dig

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/causaliot/causaliot/internal/timeseries"
)

func mustRegistry(t *testing.T, names ...string) *timeseries.Registry {
	t.Helper()
	r, err := timeseries.NewRegistry(names)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCPTConfigIndex(t *testing.T) {
	c := NewCPT([]Node{{Device: 0, Lag: 1}, {Device: 1, Lag: 1}}, 0)
	tests := []struct {
		values []int
		want   int
	}{
		{[]int{0, 0}, 0},
		{[]int{0, 1}, 1},
		{[]int{1, 0}, 2},
		{[]int{1, 1}, 3},
	}
	for _, tt := range tests {
		got, err := c.ConfigIndex(tt.values)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("ConfigIndex(%v) = %d, want %d", tt.values, got, tt.want)
		}
	}
	if _, err := c.ConfigIndex([]int{1}); err == nil {
		t.Error("short config accepted")
	}
	if _, err := c.ConfigIndex([]int{1, 2}); err == nil {
		t.Error("non-binary config accepted")
	}
}

func TestCPTCausesSortedOnConstruction(t *testing.T) {
	c := NewCPT([]Node{{Device: 2, Lag: 2}, {Device: 0, Lag: 1}, {Device: 1, Lag: 1}}, 0)
	want := []Node{{Device: 0, Lag: 1}, {Device: 1, Lag: 1}, {Device: 2, Lag: 2}}
	for i, n := range want {
		if c.Causes[i] != n {
			t.Errorf("Causes[%d] = %v, want %v", i, c.Causes[i], n)
		}
	}
}

func TestCPTMaximumLikelihood(t *testing.T) {
	// Paper's worked example: 100 snapshots with config (1,0), 80 of them
	// with outcome 1 → P(1|1,0) = 0.8.
	c := NewCPT([]Node{{Device: 0, Lag: 2}, {Device: 1, Lag: 1}}, 0)
	for i := 0; i < 100; i++ {
		outcome := 0
		if i < 80 {
			outcome = 1
		}
		if err := c.Observe([]int{1, 0}, outcome); err != nil {
			t.Fatal(err)
		}
	}
	p1, err := c.Prob(1, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-0.8) > 1e-12 {
		t.Errorf("P(1|1,0) = %v, want 0.8", p1)
	}
	p0, _ := c.Prob(0, []int{1, 0})
	if math.Abs(p0-0.2) > 1e-12 {
		t.Errorf("P(0|1,0) = %v, want 0.2", p0)
	}
}

func TestCPTUnseenConfigSmoothing(t *testing.T) {
	smoothed := NewCPT([]Node{{Device: 0, Lag: 1}}, 1)
	p, err := smoothed.Prob(1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("smoothed unseen P = %v, want 0.5", p)
	}
	unsmoothed := NewCPT([]Node{{Device: 0, Lag: 1}}, 0)
	p, err = unsmoothed.Prob(1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.5 {
		t.Errorf("unsmoothed unseen P = %v, want fallback 0.5", p)
	}
}

func TestCPTSmoothingShrinksTowardHalf(t *testing.T) {
	c := NewCPT([]Node{{Device: 0, Lag: 1}}, 1)
	for i := 0; i < 8; i++ {
		if err := c.Observe([]int{1}, 1); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := c.Prob(1, []int{1})
	want := 9.0 / 10.0 // (8+1)/(8+2)
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("smoothed P = %v, want %v", p, want)
	}
}

func TestCPTValidation(t *testing.T) {
	c := NewCPT(nil, 0)
	if err := c.Observe(nil, 2); err == nil {
		t.Error("non-binary outcome accepted")
	}
	if _, err := c.Prob(3, nil); err == nil {
		t.Error("non-binary query accepted")
	}
	if err := c.Observe(nil, 1); err != nil {
		t.Errorf("empty parent set should be valid: %v", err)
	}
	p, err := c.Prob(1, nil)
	if err != nil || p != 1 {
		t.Errorf("P(1|) = %v,%v, want 1", p, err)
	}
}

func buildChainSeries(t *testing.T, m int) (*timeseries.Registry, *timeseries.Series) {
	t.Helper()
	// light -> heater (lag 1) -> temp (lag 1), deterministic-ish chain.
	reg := mustRegistry(t, "light", "heater", "temp")
	rng := rand.New(rand.NewSource(7))
	steps := make([]timeseries.Step, 0, m)
	light, heater := 0, 0
	for j := 0; j < m; j++ {
		switch j % 3 {
		case 0:
			light = rng.Intn(2)
			steps = append(steps, timeseries.Step{Device: 0, Value: light})
		case 1:
			heater = light
			steps = append(steps, timeseries.Step{Device: 1, Value: heater})
		default:
			steps = append(steps, timeseries.Step{Device: 2, Value: heater})
		}
	}
	s, err := timeseries.FromSteps(reg, timeseries.State{0, 0, 0}, steps)
	if err != nil {
		t.Fatal(err)
	}
	return reg, s
}

func TestGraphFitAndScore(t *testing.T) {
	reg, series := buildChainSeries(t, 900)
	parents := [][]Node{
		{},                    // light has no parents
		{{Device: 0, Lag: 1}}, // heater <- light(t-1)
		{{Device: 1, Lag: 1}}, // temp <- heater(t-1)
	}
	g, err := New(reg, 2, parents, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(series); err != nil {
		t.Fatal(err)
	}
	// When the light was just set, the heater copies it at the next step;
	// over all anchors (including ones where the heater merely persists)
	// the conditional P(heater=1 | light(t-1)=1) must clearly exceed
	// P(heater=1 | light(t-1)=0).
	pOn, err := g.Likelihood(1, 1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	pOff, err := g.Likelihood(1, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if pOn <= pOff {
		t.Errorf("P(heater=1|light=1)=%v should exceed P(heater=1|light=0)=%v", pOn, pOff)
	}
	scoreViolate, err := g.AnomalyScore(1, 1, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	scoreNormal, err := g.AnomalyScore(1, 1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if scoreViolate <= scoreNormal {
		t.Errorf("violating score %v should exceed normal score %v", scoreViolate, scoreNormal)
	}
}

func TestGraphValidation(t *testing.T) {
	reg := mustRegistry(t, "a", "b")
	if _, err := New(nil, 1, [][]Node{{}, {}}, 0); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := New(reg, 0, [][]Node{{}, {}}, 0); err == nil {
		t.Error("tau 0 accepted")
	}
	if _, err := New(reg, 1, [][]Node{{}}, 0); err == nil {
		t.Error("wrong parent set count accepted")
	}
	if _, err := New(reg, 1, [][]Node{{{Device: 5, Lag: 1}}, {}}, 0); err == nil {
		t.Error("out-of-range parent device accepted")
	}
	if _, err := New(reg, 1, [][]Node{{{Device: 0, Lag: 0}}, {}}, 0); err == nil {
		t.Error("lag-0 parent accepted")
	}
	if _, err := New(reg, 1, [][]Node{{{Device: 0, Lag: 2}}, {}}, 0); err == nil {
		t.Error("lag > tau parent accepted")
	}
}

func TestGraphFitRegistryMismatch(t *testing.T) {
	regA := mustRegistry(t, "a")
	regB := mustRegistry(t, "b")
	s, _ := timeseries.FromSteps(regB, timeseries.State{0}, []timeseries.Step{{Device: 0, Value: 1}})
	g, err := New(regA, 1, [][]Node{{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(s); err == nil {
		t.Error("registry mismatch accepted")
	}
	// A structurally identical registry (same names, same order) is
	// accepted even when it is a different instance — model persistence
	// and incremental extension rely on this.
	regC := mustRegistry(t, "a")
	s2, _ := timeseries.FromSteps(regC, timeseries.State{0}, []timeseries.Step{{Device: 0, Value: 1}})
	if err := g.Fit(s2); err != nil {
		t.Errorf("structurally equal registry rejected: %v", err)
	}
}

func TestInteractionsAndDevicePairs(t *testing.T) {
	reg := mustRegistry(t, "a", "b", "c")
	parents := [][]Node{
		{},
		{{Device: 0, Lag: 1}, {Device: 0, Lag: 2}},
		{{Device: 1, Lag: 1}},
	}
	g, err := New(reg, 2, parents, 0)
	if err != nil {
		t.Fatal(err)
	}
	ints := g.Interactions()
	if len(ints) != 3 {
		t.Fatalf("Interactions = %v", ints)
	}
	pairs := g.DevicePairs()
	if len(pairs) != 2 {
		t.Fatalf("DevicePairs = %v (lags should collapse)", pairs)
	}
	if pairs[0] != (DevicePair{Cause: 0, Outcome: 1}) || pairs[1] != (DevicePair{Cause: 1, Outcome: 2}) {
		t.Errorf("DevicePairs = %v", pairs)
	}
	if ch := g.Children(0); len(ch) != 1 || ch[0] != 1 {
		t.Errorf("Children(0) = %v", ch)
	}
	if ch := g.Children(2); len(ch) != 0 {
		t.Errorf("Children(2) = %v", ch)
	}
}

func TestNodeNameAndDOT(t *testing.T) {
	reg := mustRegistry(t, "light", "heater")
	g, err := New(reg, 2, [][]Node{{}, {{Device: 0, Lag: 2}}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NodeName(Node{Device: 0, Lag: 2}); got != "light@t-2" {
		t.Errorf("NodeName = %q", got)
	}
	if got := g.NodeName(Node{Device: 1, Lag: 0}); got != "heater@t" {
		t.Errorf("NodeName = %q", got)
	}
	dot := g.DOT()
	if !strings.Contains(dot, `"light" -> "heater";`) {
		t.Errorf("DOT missing edge:\n%s", dot)
	}
	if !strings.Contains(g.String(), "interactions=1") {
		t.Errorf("String = %q", g.String())
	}
}

// Property: for any fitted CPT, P(0|ca) + P(1|ca) = 1 and both lie in [0,1].
func TestCPTProbabilityAxiomsProperty(t *testing.T) {
	f := func(seed int64, smoothingRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		smoothing := float64(smoothingRaw % 3)
		c := NewCPT([]Node{{Device: 0, Lag: 1}, {Device: 1, Lag: 2}}, smoothing)
		for i := 0; i < 50; i++ {
			cfg := []int{rng.Intn(2), rng.Intn(2)}
			if err := c.Observe(cfg, rng.Intn(2)); err != nil {
				return false
			}
		}
		for idx := 0; idx < 4; idx++ {
			cfg := []int{idx >> 1, idx & 1}
			p0, err0 := c.Prob(0, cfg)
			p1, err1 := c.Prob(1, cfg)
			if err0 != nil || err1 != nil {
				return false
			}
			if p0 < 0 || p0 > 1 || p1 < 0 || p1 > 1 {
				return false
			}
			if math.Abs(p0+p1-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Fit over a random series never errors and every anomaly score
// lies in [0,1].
func TestGraphScoreRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg, err := timeseries.NewRegistry([]string{"a", "b"})
		if err != nil {
			return false
		}
		steps := make([]timeseries.Step, 30)
		for i := range steps {
			steps[i] = timeseries.Step{Device: rng.Intn(2), Value: rng.Intn(2)}
		}
		s, err := timeseries.FromSteps(reg, timeseries.State{0, 0}, steps)
		if err != nil {
			return false
		}
		g, err := New(reg, 2, [][]Node{{{Device: 1, Lag: 1}}, {{Device: 0, Lag: 2}}}, 1)
		if err != nil {
			return false
		}
		if err := g.Fit(s); err != nil {
			return false
		}
		for dev := 0; dev < 2; dev++ {
			for v := 0; v <= 1; v++ {
				for ca := 0; ca <= 1; ca++ {
					score, err := g.AnomalyScore(dev, v, []int{ca})
					if err != nil || score < 0 || score > 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCPTMergeRefusesMismatches(t *testing.T) {
	a := NewCPT([]Node{{Device: 0, Lag: 1}}, 0.01)
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	if err := a.Merge(NewCPT([]Node{{Device: 0, Lag: 1}}, 0.5)); err == nil {
		t.Error("smoothing mismatch accepted")
	}
	if err := a.Merge(NewCPT([]Node{{Device: 1, Lag: 1}}, 0.01)); err == nil {
		t.Error("parent mismatch accepted")
	}
	if err := a.Merge(NewCPT(nil, 0.01)); err == nil {
		t.Error("parent count mismatch accepted")
	}
}

func TestCPTMergeMatchesIncrementalObserve(t *testing.T) {
	causes := []Node{{Device: 0, Lag: 1}, {Device: 1, Lag: 2}}
	whole := NewCPT(causes, 0.01)
	partA := NewCPT(causes, 0.01)
	partB := NewCPT(causes, 0.01)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		values := []int{rng.Intn(2), rng.Intn(2)}
		outcome := rng.Intn(2)
		if err := whole.Observe(values, outcome); err != nil {
			t.Fatal(err)
		}
		part := partA
		if i >= 200 {
			part = partB
		}
		if err := part.Observe(values, outcome); err != nil {
			t.Fatal(err)
		}
	}
	if err := partA.Merge(partB); err != nil {
		t.Fatal(err)
	}
	for cfg := 0; cfg < whole.NumConfigs(); cfg++ {
		wOn, wTot := whole.CountsAt(cfg)
		mOn, mTot := partA.CountsAt(cfg)
		if wOn != mOn || wTot != mTot {
			t.Fatalf("cfg %d: merged (%v,%v), whole (%v,%v)", cfg, mOn, mTot, wOn, wTot)
		}
	}
	if whole.Smoothing() != 0.01 {
		t.Fatalf("smoothing accessor = %v", whole.Smoothing())
	}
}

func TestCPTReset(t *testing.T) {
	c := NewCPT([]Node{{Device: 0, Lag: 1}}, 0.01)
	if err := c.Observe([]int{1}, 1); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	for cfg := 0; cfg < c.NumConfigs(); cfg++ {
		if on, total := c.CountsAt(cfg); on != 0 || total != 0 {
			t.Fatalf("reset left counts (%v,%v) at cfg %d", on, total, cfg)
		}
	}
}

// CloneStructure + Fit + Merge must reproduce a direct Fit over the
// concatenated anchors: counts are integer-valued, so float addition is
// exact and the refit path is bit-identical to training from scratch.
func TestGraphCloneStructureFitMerge(t *testing.T) {
	reg := mustRegistry(t, "a", "b")
	parents := [][]Node{nil, {{Device: 0, Lag: 1}}}
	g, err := New(reg, 2, parents, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var steps []timeseries.Step
	for i := 0; i < 300; i++ {
		steps = append(steps, timeseries.Step{Device: rng.Intn(2), Value: rng.Intn(2)})
	}
	series, err := timeseries.FromSteps(reg, timeseries.State{0, 0}, steps)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Fit(series); err != nil {
		t.Fatal(err)
	}

	clone := g.CloneStructure()
	for i := 0; i < reg.Len(); i++ {
		if on, total := clone.CPTOf(i).CountsAt(0); on != 0 || total != 0 {
			t.Fatalf("clone device %d starts with counts (%v,%v)", i, on, total)
		}
		if clone.CPTOf(i).Smoothing() != g.CPTOf(i).Smoothing() {
			t.Fatalf("clone device %d smoothing differs", i)
		}
	}
	if err := clone.Fit(series); err != nil {
		t.Fatal(err)
	}
	empty := g.CloneStructure()
	if err := empty.Merge(clone); err != nil {
		t.Fatal(err)
	}
	for dev := 0; dev < reg.Len(); dev++ {
		want, got := g.CPTOf(dev), empty.CPTOf(dev)
		for cfg := 0; cfg < want.NumConfigs(); cfg++ {
			wOn, wTot := want.CountsAt(cfg)
			gOn, gTot := got.CountsAt(cfg)
			if wOn != gOn || wTot != gTot {
				t.Fatalf("dev %d cfg %d: merged (%v,%v), fitted (%v,%v)", dev, cfg, gOn, gTot, wOn, wTot)
			}
		}
	}

	other, err := New(reg, 3, parents, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Merge(other); err == nil {
		t.Error("tau mismatch accepted")
	}
	if err := g.Merge(nil); err == nil {
		t.Error("nil graph merge accepted")
	}
	reg2 := mustRegistry(t, "x", "y")
	other2, err := New(reg2, 2, parents, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Merge(other2); err == nil {
		t.Error("registry mismatch accepted")
	}
}
