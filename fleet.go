package causaliot

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/causaliot/causaliot/internal/fleet"
	"github.com/causaliot/causaliot/internal/hub"
)

// Fleet serving errors. ErrMigrationInFlight marks an operation refused
// because the tenant is already mid-migration; ErrUnknownShard an operation
// addressing a shard id the fleet does not host; ErrLastShard a RemoveShard
// that would leave the fleet empty.
var (
	ErrMigrationInFlight = fleet.ErrMigrating
	ErrUnknownShard      = fleet.ErrUnknownShard
	ErrLastShard         = fleet.ErrLastShard
)

// Host is the serving surface Hub and Fleet share: register homes, submit
// events, consume alarms, pause-and-export state, and shut down. Code
// written against Host runs unchanged on a single hub or a sharded fleet —
// swap NewHub for NewFleet and nothing else moves.
type Host interface {
	Register(tenant string, sys *System, opts TenantOptions) error
	RegisterMonitor(tenant string, mon *Monitor, opts TenantOptions) error
	Deregister(tenant string) error
	Submit(tenant string, ev Event) error
	Alarms() <-chan TenantAlarm
	SetAlarmRoute(tenant string, sink func(TenantAlarm)) error
	Swap(tenant string, sys *System) error
	Export(tenant string, opts ExportOptions) error
	Flush(tenant string) error
	Stats() HubStats
	LifecycleStats() map[string]LifecycleStats
	Close() error
	CloseWithin(d time.Duration) error
}

var (
	_ Host = (*Hub)(nil)
	_ Host = (*Fleet)(nil)
)

// Shard is one serving shard behind the fleet's router: an in-process hub
// (every NewFleet/AddShard shard) or a shard worker in another OS process
// reached over the cluster wire protocol (AddRemoteShard). The fleet treats
// the two identically — placement, live migration, stats aggregation, and
// shutdown all speak this surface — so a fleet can mix local and remote
// shards freely and a migration can cross a process boundary.
type Shard interface {
	// RegisterMonitor hosts a live monitor on the shard, routing its alarms
	// into sink. The shard takes ownership of the monitor; a remote shard
	// serializes it through the checkpoint envelope and closes the local
	// copy.
	RegisterMonitor(tenant string, mon *Monitor, opts TenantOptions, sink func(TenantAlarm)) error
	// ImportEnvelope hosts a tenant restored from a checkpoint envelope —
	// the transport live migration and remote registration share. A nil
	// state registers a fresh monitor over the model alone.
	ImportEnvelope(tenant string, model, state []byte, opts TenantOptions, sink func(TenantAlarm)) error
	// ExportEnvelope returns the tenant's checkpoint envelope. Quiesce
	// first: the envelope then covers an exact event boundary.
	ExportEnvelope(tenant string) (model, state []byte, err error)
	// Quiesce blocks until every event accepted for the tenant so far is
	// fully processed.
	Quiesce(tenant string) error
	Deregister(tenant string) error
	Submit(tenant string, ev Event) error
	Swap(tenant string, sys *System) error
	Export(tenant string, opts ExportOptions) error
	Flush(tenant string) error
	TenantStats(tenant string) (TenantStats, error)
	Stats() HubStats
	LifecycleStats() map[string]LifecycleStats
	// Health reports the shard's serving health; for a remote shard, the
	// link state and fault-tolerance counters.
	Health() ShardHealth
	Close() error
	CloseWithin(d time.Duration) error
}

// ShardHealth is one shard's health summary, surfaced in FleetStats and the
// serve command's stats JSON.
type ShardHealth struct {
	// Remote is false for an in-process shard. Addr is the worker address
	// of a remote shard.
	Remote bool   `json:"remote"`
	Addr   string `json:"addr,omitempty"`
	// Link is "local" for an in-process shard, else the remote link state:
	// connected, degraded (reconnecting; events banked), or gave-up.
	Link string `json:"link"`
	// Remote fault-tolerance counters: link recoveries, per-tenant resume
	// ops, events retransmitted from the window, events currently banked
	// awaiting acknowledgement, and checkpoint envelope bytes moved in each
	// direction.
	Reconnects       uint64 `json:"reconnects,omitempty"`
	Resumes          uint64 `json:"resumes,omitempty"`
	Retransmits      uint64 `json:"retransmits,omitempty"`
	PendingEvents    int    `json:"pending_events,omitempty"`
	EnvelopeBytesIn  uint64 `json:"envelope_bytes_in,omitempty"`
	EnvelopeBytesOut uint64 `json:"envelope_bytes_out,omitempty"`
}

// localShard adapts an in-process *Hub to the Shard surface.
type localShard struct {
	h *Hub
}

func (s *localShard) RegisterMonitor(tenant string, mon *Monitor, opts TenantOptions, sink func(TenantAlarm)) error {
	if err := s.h.RegisterMonitor(tenant, mon, opts); err != nil {
		return err
	}
	if err := s.h.SetAlarmRoute(tenant, sink); err != nil {
		_ = s.h.Deregister(tenant)
		return err
	}
	return nil
}

func (s *localShard) ImportEnvelope(tenant string, model, state []byte, opts TenantOptions, sink func(TenantAlarm)) error {
	sys, err := Load(bytes.NewReader(model))
	if err != nil {
		return fmt.Errorf("causaliot: import %q: %w", tenant, err)
	}
	var mon *Monitor
	if state == nil {
		mon, err = sys.NewMonitor()
	} else {
		// RestoreMonitor re-attaches to the cache-interned model when the
		// fingerprint is already resident in this process, so landing on a
		// shard already serving the model costs no duplicate compiled
		// tables.
		mon, err = sys.RestoreMonitor(bytes.NewReader(state))
	}
	if err != nil {
		return fmt.Errorf("causaliot: import %q: %w", tenant, err)
	}
	if err := s.RegisterMonitor(tenant, mon, opts, sink); err != nil {
		mon.Close()
		return err
	}
	return nil
}

func (s *localShard) ExportEnvelope(tenant string) ([]byte, []byte, error) {
	var model, state bytes.Buffer
	if err := s.h.Export(tenant, ExportOptions{Model: &model, State: &state}); err != nil {
		return nil, nil, err
	}
	return model.Bytes(), state.Bytes(), nil
}

func (s *localShard) Quiesce(tenant string) error      { return s.h.inner.Quiesce(tenant) }
func (s *localShard) Deregister(tenant string) error   { return s.h.Deregister(tenant) }
func (s *localShard) Submit(tenant string, ev Event) error { return s.h.Submit(tenant, ev) }
func (s *localShard) Swap(tenant string, sys *System) error { return s.h.Swap(tenant, sys) }
func (s *localShard) Export(tenant string, opts ExportOptions) error {
	return s.h.Export(tenant, opts)
}
func (s *localShard) Flush(tenant string) error { return s.h.Flush(tenant) }
func (s *localShard) TenantStats(tenant string) (TenantStats, error) {
	ts, err := s.h.inner.TenantStats(tenant)
	if err != nil {
		return TenantStats{}, err
	}
	return convertTenantStats(ts), nil
}
func (s *localShard) Stats() HubStats                          { return s.h.Stats() }
func (s *localShard) LifecycleStats() map[string]LifecycleStats { return s.h.LifecycleStats() }
func (s *localShard) Health() ShardHealth                      { return ShardHealth{Link: "local"} }
func (s *localShard) Close() error                             { return s.h.Close() }
func (s *localShard) CloseWithin(d time.Duration) error        { return s.h.CloseWithin(d) }

// FleetConfig tunes a sharded serving fleet. The zero value selects one
// shard with default hub settings.
type FleetConfig struct {
	// Shards is the initial number of hub shards. Defaults to 1.
	Shards int
	// Replicas is the virtual-node count per shard on the consistent-hash
	// ring; more replicas smooth tenant placement. Defaults to 64.
	Replicas int
	// Hub configures every shard's hub. Note Workers is per shard: a fleet
	// of S shards runs S×Workers workers (Workers=0 defaults each shard to
	// GOMAXPROCS — size it explicitly for multi-shard fleets).
	Hub HubConfig
}

// fleetTenant is the fleet's per-home registration record: the options to
// re-register with on migration, and the counters carried over from shards
// that previously served the home, so Stats stays cumulative across
// migrations.
type fleetTenant struct {
	opts TenantOptions

	mu      sync.Mutex
	carried TenantStats
	// route, when set (SetAlarmRoute), receives the home's alarms ahead of
	// opts.OnAlarm and the fan-in channel. It lives on the fleet record —
	// not any one shard hub — so it follows the home across migrations.
	route func(TenantAlarm)
}

func (ft *fleetTenant) alarmRoute() func(TenantAlarm) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.route
}

func (ft *fleetTenant) carry(ts TenantStats) {
	ft.mu.Lock()
	ft.carried = addTenantCounters(ft.carried, ts)
	ft.mu.Unlock()
}

func (ft *fleetTenant) carriedStats() TenantStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.carried
}

// addTenantCounters sums the cumulative counters of two TenantStats; the
// point-in-time fields (queue depth, health, latency percentiles, last
// error) are taken from b, the more recent snapshot.
func addTenantCounters(a, b TenantStats) TenantStats {
	b.Ingested += a.Ingested
	b.Processed += a.Processed
	b.Alarms += a.Alarms
	b.Dropped += a.Dropped
	b.Rejected += a.Rejected
	b.Errors += a.Errors
	b.Panics += a.Panics
	b.Shed += a.Shed
	b.Updates += a.Updates
	return b
}

// Fleet serves many independent homes across N in-process hub shards:
// tenants are consistent-hashed onto shards, each shard is a full Hub
// (bounded per-home queues over its own worker pool), and the fleet
// presents the same outward surface as a single Hub — Submit, fan-in
// Alarms, Register/Deregister, aggregated Stats — so callers swap NewHub
// for NewFleet without other changes.
//
// Beyond the Hub surface, a fleet can Migrate a live tenant between shards
// with zero event loss and Rebalance the whole fleet after AddShard or
// RemoveShard. A migration reuses the crash-recovery checkpoint envelope as
// its transport: the tenant's route is suspended (submissions buffer in a
// bounded gap), the source shard is quiesced to an exact event boundary,
// model and runtime state are exported, restored, and registered on the
// target, the gap replays, and the route flips atomically.
//
// All methods are safe for concurrent use.
type Fleet struct {
	cfg    FleetConfig
	router *fleet.Router

	alarms        chan TenantAlarm
	alarmsDropped atomic.Uint64
	// dropLogged records which tenants already logged an alarm drop off the
	// fan-in channel: one log line per home, not a flood.
	dropLogged sync.Map

	mu        sync.RWMutex
	shards    map[int]Shard
	nextShard int
	tenants   map[string]*fleetTenant

	closed atomic.Bool
	// migMu/migCond guard migActive, the count of migrations in flight.
	// Close must not drain the shards under a live handoff, and a plain
	// WaitGroup cannot express "no new Add after close" — the counter is
	// checked and bumped under the same lock as the closed flag.
	migMu     sync.Mutex
	migCond   *sync.Cond
	migActive int
	closeErr  error
}

// NewFleet starts a sharded serving fleet: cfg.Shards hubs, each with its
// own worker pool, behind one consistent-hash router. Close it to drain and
// stop every shard.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return newFleet(cfg, cfg.Shards)
}

// newFleet builds a fleet with localShards in-process hub shards; zero is
// allowed for cluster routers whose shards are all remote (AddRemoteShard).
func newFleet(cfg FleetConfig, localShards int) *Fleet {
	buffer := cfg.Hub.AlarmBuffer
	if buffer <= 0 {
		buffer = 256
	}
	f := &Fleet{
		cfg:     cfg,
		router:  fleet.NewRouter(cfg.Replicas),
		alarms:  make(chan TenantAlarm, buffer),
		shards:  make(map[int]Shard),
		tenants: make(map[string]*fleetTenant),
	}
	f.migCond = sync.NewCond(&f.migMu)
	for i := 0; i < localShards; i++ {
		id := f.nextShard
		f.nextShard++
		f.shards[id] = &localShard{h: NewHub(cfg.Hub)}
		f.router.AddShard(id)
	}
	return f
}

// shard fetches a live shard by id.
func (f *Fleet) shard(id int) Shard {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.shards[id]
}

// Shards returns the current shard ids, sorted.
func (f *Fleet) Shards() []int { return f.router.Shards() }

// ShardOf returns the shard currently serving a tenant.
func (f *Fleet) ShardOf(tenant string) (int, error) {
	id, ok := f.router.Route(tenant)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	return id, nil
}

// Alarms returns the fan-in channel on which homes without an OnAlarm
// callback deliver their alarms, whichever shard serves them. Delivery
// happens on the home's stream thread, so one home's alarms stay ordered —
// including across a live migration. The channel is closed by Close after
// the final drain.
func (f *Fleet) Alarms() <-chan TenantAlarm { return f.alarms }

// deliverFor builds the alarm sink a shard hub routes one home's alarms
// through. The sink consults the fleet's per-home record on every delivery
// — SetAlarmRoute first, then the home's own OnAlarm, then the fan-in
// channel — so a route set mid-migration takes effect the moment the home
// lands on its new shard, and an alarm that cannot be delivered is counted
// and logged, never silently discarded.
func (f *Fleet) deliverFor(ft *fleetTenant) func(TenantAlarm) {
	return func(ta TenantAlarm) {
		if route := ft.alarmRoute(); route != nil {
			route(ta)
			return
		}
		if ft.opts.OnAlarm != nil {
			ft.opts.OnAlarm(ta.Tenant, ta.Alarm, ta.Score)
			return
		}
		select {
		case f.alarms <- ta:
		default:
			f.noteAlarmDropped(ta.Tenant)
		}
	}
}

// noteAlarmDropped counts one alarm discarded off the full fan-in channel
// and logs the first drop per home.
func (f *Fleet) noteAlarmDropped(tenant string) {
	f.alarmsDropped.Add(1)
	if _, logged := f.dropLogged.LoadOrStore(tenant, struct{}{}); !logged {
		log.Printf("causaliot: fleet alarms channel full; dropping alarms for home %q (first drop — consume Alarms faster or raise AlarmBuffer)", tenant)
	}
}

// SetAlarmRoute directs a home's alarms to sink, taking precedence over
// both the home's OnAlarm callback and the fan-in Alarms channel; a nil
// sink restores the previous delivery. The route is a fleet-level property
// of the home: it survives live migration between shards. The sink runs on
// the home's stream thread — return quickly or hand off.
func (f *Fleet) SetAlarmRoute(tenant string, sink func(TenantAlarm)) error {
	f.mu.RLock()
	ft := f.tenants[tenant]
	f.mu.RUnlock()
	if ft == nil {
		return fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	ft.mu.Lock()
	ft.route = sink
	ft.mu.Unlock()
	return nil
}

// Register hosts a home on the fleet, placed on its ring-assigned shard: a
// fresh Monitor is started from the trained system and fed the home's
// submitted events in order.
func (f *Fleet) Register(tenant string, sys *System, opts TenantOptions) error {
	if sys == nil {
		return errors.New("causaliot: register with nil system")
	}
	mon, err := sys.NewMonitor()
	if err != nil {
		return err
	}
	if err := f.RegisterMonitor(tenant, mon, opts); err != nil {
		mon.Close()
		return err
	}
	return nil
}

// RegisterMonitor hosts a home on an existing monitor — typically one
// restored from a checkpoint — on its ring-assigned shard. The fleet takes
// ownership of the monitor.
func (f *Fleet) RegisterMonitor(tenant string, mon *Monitor, opts TenantOptions) error {
	if mon == nil {
		return errors.New("causaliot: register with nil monitor")
	}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return ErrHubClosed
	}
	if _, dup := f.tenants[tenant]; dup {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateTenant, tenant)
	}
	shard, ok := f.router.Owner(tenant)
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: fleet has no shards", ErrUnknownShard)
	}
	s := f.shards[shard]
	ft := &fleetTenant{opts: opts}
	f.tenants[tenant] = ft
	f.mu.Unlock()

	unreserve := func() {
		f.mu.Lock()
		delete(f.tenants, tenant)
		f.mu.Unlock()
	}
	if err := s.RegisterMonitor(tenant, mon, opts, f.deliverFor(ft)); err != nil {
		unreserve()
		return err
	}
	if err := f.router.Activate(tenant, shard, f.gapPolicy(opts), f.gapCap(opts), f.submitTo(tenant)); err != nil {
		_ = s.Deregister(tenant)
		unreserve()
		return err
	}
	return nil
}

// gapCap sizes a tenant's migration gap buffer to its ingestion queue
// capacity, so a replayed gap always fits the freshly registered (empty)
// queue on the target shard without tripping backpressure.
func (f *Fleet) gapCap(opts TenantOptions) int {
	if opts.QueueSize > 0 {
		return opts.QueueSize
	}
	if f.cfg.Hub.QueueSize > 0 {
		return f.cfg.Hub.QueueSize
	}
	return 1024
}

func (f *Fleet) gapPolicy(opts TenantOptions) hub.Policy {
	p := opts.Backpressure
	if p == BackpressureDefault {
		p = f.cfg.Hub.Backpressure
	}
	return p.internal()
}

// Deregister removes a home from the fleet, discarding its queued events
// and releasing any producers blocked on its queue. A migration in flight
// for the home completes first.
func (f *Fleet) Deregister(tenant string) error {
	shard, ok := f.router.Remove(tenant)
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	f.mu.Lock()
	delete(f.tenants, tenant)
	s := f.shards[shard]
	f.mu.Unlock()
	if s == nil {
		return fmt.Errorf("%w %d", ErrUnknownShard, shard)
	}
	return s.Deregister(tenant)
}

// submitTo builds a home's shard enqueue sink, created once per
// registration and stored on the router's route entry — the per-event
// Submit path then closes over nothing and allocates nothing.
func (f *Fleet) submitTo(tenant string) func(shard int, hev hub.Event) error {
	return func(shard int, hev hub.Event) error {
		s := f.shard(shard)
		if s == nil {
			return fmt.Errorf("%w %d", ErrUnknownShard, shard)
		}
		return s.Submit(tenant, Event{Device: hev.Device, Value: hev.Value, Time: hev.Time, Seq: hev.Seq})
	}
}

// Submit enqueues one event for a home on whichever shard serves it. While
// the home is mid-migration the event is buffered in the migration gap and
// replayed onto the target shard before the route flips; a full gap applies
// the home's backpressure policy.
func (f *Fleet) Submit(tenant string, ev Event) error {
	if f.closed.Load() {
		return ErrHubClosed
	}
	return f.router.Dispatch(tenant, hub.Event{Device: ev.Device, Value: ev.Value, Time: ev.Time, Seq: ev.Seq})
}

// control runs fn against the home's serving shard with migrations
// excluded and the route held.
func (f *Fleet) control(tenant string, fn func(s Shard) error) error {
	return f.router.Control(tenant, func(shard int) error {
		s := f.shard(shard)
		if s == nil {
			return fmt.Errorf("%w %d", ErrUnknownShard, shard)
		}
		return fn(s)
	})
}

// Swap hot-swaps a home's model on its serving shard (see Hub.Swap).
func (f *Fleet) Swap(tenant string, sys *System) error {
	if sys == nil {
		return errors.New("causaliot: swap to nil system")
	}
	return f.control(tenant, func(s Shard) error { return s.Swap(tenant, sys) })
}

// Export writes a home's serving artifacts under a single stream pause on
// its serving shard (see Hub.Export), serialized against migrations: an
// export never observes a half-moved home.
func (f *Fleet) Export(tenant string, opts ExportOptions) error {
	return f.control(tenant, func(s Shard) error { return s.Export(tenant, opts) })
}

// Flush reports a home's partially tracked anomaly chain (if any) through
// its alarm route (see Hub.Flush).
func (f *Fleet) Flush(tenant string) error {
	return f.control(tenant, func(s Shard) error { return s.Flush(tenant) })
}

// Migrate moves a live home to another shard with zero event loss: the
// home's route is suspended (submissions buffer in the migration gap), the
// source shard quiesces the home to an exact event boundary, the serving
// model and runtime checkpoint are exported and restored onto the target
// shard through the same envelope crash recovery uses, the gap replays, and
// the route flips atomically. The home's stats counters carry over.
//
// A background model refresh in flight on the source is abandoned — its
// hot swap can no longer land — and the drift that triggered it is
// re-detected on the target shard as fresh evidence accumulates.
func (f *Fleet) Migrate(tenant string, shard int) error {
	// The closed check and the in-flight count move together under migMu:
	// either this migration is counted before Close starts waiting, or it
	// observes the closed fleet and refuses.
	f.migMu.Lock()
	if f.closed.Load() {
		f.migMu.Unlock()
		return ErrHubClosed
	}
	f.migActive++
	f.migMu.Unlock()
	defer func() {
		f.migMu.Lock()
		f.migActive--
		if f.migActive == 0 {
			f.migCond.Broadcast()
		}
		f.migMu.Unlock()
	}()
	f.mu.RLock()
	dst := f.shards[shard]
	ft := f.tenants[tenant]
	f.mu.RUnlock()
	if dst == nil {
		return fmt.Errorf("%w %d", ErrUnknownShard, shard)
	}
	if ft == nil {
		return fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	_, err := f.router.Migrate(tenant, shard,
		func(from int) error { return f.handoff(tenant, ft, from, shard) })
	return err
}

// handoff pipes one home through the checkpoint envelope from shard `from`
// to shard `to` while the router holds the home's route suspended. Either
// side (or both) may live in another process — the envelope is bytes and
// every step speaks the Shard surface. The source is not deregistered until
// the target registration succeeded, so any failure aborts with the home
// still served where it was.
func (f *Fleet) handoff(tenant string, ft *fleetTenant, from, to int) error {
	src, dst := f.shard(from), f.shard(to)
	if src == nil || dst == nil {
		return fmt.Errorf("%w (%d -> %d)", ErrUnknownShard, from, to)
	}
	// Quiesce: every event accepted before the route was suspended is fully
	// processed, so the exported envelope covers the complete stream prefix.
	// For a remote source this also flushes its banked alarms to the router
	// before the route can flip away.
	if err := src.Quiesce(tenant); err != nil {
		return err
	}
	model, state, err := src.ExportEnvelope(tenant)
	if err != nil {
		return err
	}
	if err := dst.ImportEnvelope(tenant, model, state, ft.opts, f.deliverFor(ft)); err != nil {
		return fmt.Errorf("causaliot: migrate %q: %w", tenant, err)
	}
	// Carry the source life's counters before they vanish with the tenant.
	if ts, err := src.TenantStats(tenant); err == nil {
		ft.carry(ts)
	}
	if err := src.Deregister(tenant); err != nil {
		_ = dst.Deregister(tenant)
		return err
	}
	return nil
}

// Rebalance reconciles every home with its ring-assigned shard, live-
// migrating each misplaced one. Homes are visited in name order; the first
// error does not stop the sweep, and all errors are joined.
func (f *Fleet) Rebalance() error {
	var errs []error
	for _, tenant := range f.router.Tenants() {
		owner, ok := f.router.Owner(tenant)
		if !ok {
			continue
		}
		current, ok := f.router.Route(tenant)
		if !ok || current == owner {
			continue
		}
		if err := f.Migrate(tenant, owner); err != nil {
			errs = append(errs, fmt.Errorf("rebalance %q: %w", tenant, err))
		}
	}
	return errors.Join(errs...)
}

// AddShard grows the fleet by one hub shard and rebalances: the ~1/N of
// homes whose ring arcs moved onto the new shard are live-migrated to it.
// Returns the new shard's id.
func (f *Fleet) AddShard() (int, error) {
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return 0, ErrHubClosed
	}
	id := f.nextShard
	f.nextShard++
	f.shards[id] = &localShard{h: NewHub(f.cfg.Hub)}
	f.mu.Unlock()
	f.router.AddShard(id)
	return id, f.Rebalance()
}

// AddShardFor grows the fleet by one shard backed by the given Shard
// implementation — the hook remote shard proxies attach through (see
// Fleet.AddRemoteShard) — and rebalances onto it. Returns the new shard id.
func (f *Fleet) AddShardFor(s Shard) (int, error) {
	if s == nil {
		return 0, errors.New("causaliot: add nil shard")
	}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return 0, ErrHubClosed
	}
	id := f.nextShard
	f.nextShard++
	f.shards[id] = s
	f.mu.Unlock()
	f.router.AddShard(id)
	return id, f.Rebalance()
}

// RemoveShard shrinks the fleet: the shard's homes are live-migrated to
// their new ring owners, then the emptied shard's hub is closed. Removing
// the last shard is refused with ErrLastShard.
func (f *Fleet) RemoveShard(id int) error {
	f.mu.RLock()
	h := f.shards[id]
	last := len(f.shards) <= 1
	f.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("%w %d", ErrUnknownShard, id)
	}
	if last {
		return ErrLastShard
	}
	f.router.RemoveShard(id)
	if err := f.Rebalance(); err != nil {
		return err
	}
	if stranded := f.router.TenantsOn(id); len(stranded) > 0 {
		return fmt.Errorf("causaliot: shard %d still serves %d homes after rebalance", id, len(stranded))
	}
	f.mu.Lock()
	delete(f.shards, id)
	f.mu.Unlock()
	return h.Close()
}

// LifecycleStats merges the lifecycle counters of every adaptive home
// across all shards, keyed by tenant name.
func (f *Fleet) LifecycleStats() map[string]LifecycleStats {
	f.mu.RLock()
	shards := make([]Shard, 0, len(f.shards))
	for _, s := range f.shards {
		shards = append(shards, s)
	}
	f.mu.RUnlock()
	out := make(map[string]LifecycleStats)
	for _, s := range shards {
		for name, ls := range s.LifecycleStats() {
			out[name] = ls
		}
	}
	return out
}

// Stats aggregates the fleet's runtime counters into the same shape a
// single Hub reports: one entry per home (cumulative across migrations),
// a fleet-wide total, and the summed worker count. Latency percentiles are
// point-in-time per serving shard; the Total percentiles are the worst
// shard's, a conservative bound.
func (f *Fleet) Stats() HubStats {
	f.mu.RLock()
	ids := make([]int, 0, len(f.shards))
	for id := range f.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	shards := make([]Shard, len(ids))
	for i, id := range ids {
		shards[i] = f.shards[id]
	}
	carried := make(map[string]TenantStats, len(f.tenants))
	for name, ft := range f.tenants {
		carried[name] = ft.carriedStats()
	}
	f.mu.RUnlock()

	merged := make(map[string]TenantStats)
	out := HubStats{AlarmsDropped: f.alarmsDropped.Load()}
	for _, sh := range shards {
		s := sh.Stats()
		out.Workers += s.Workers
		out.AlarmsDropped += s.AlarmsDropped
		out.GroupedDrains += s.GroupedDrains
		for _, ts := range s.Tenants {
			if prev, ok := merged[ts.Tenant]; ok {
				// Mid-handoff a home transiently exists on two shards; sum
				// the counters (the new life starts at zero).
				ts = addTenantCounters(prev, ts)
			}
			merged[ts.Tenant] = ts
		}
		if s.Total.P50 > out.Total.P50 {
			out.Total.P50 = s.Total.P50
		}
		if s.Total.P99 > out.Total.P99 {
			out.Total.P99 = s.Total.P99
		}
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out.Tenants = make([]TenantStats, 0, len(names))
	for _, name := range names {
		ts := merged[name]
		if c, ok := carried[name]; ok {
			ts = addTenantCounters(c, ts)
		}
		out.Tenants = append(out.Tenants, ts)
		t := &out.Total
		t.Ingested += ts.Ingested
		t.Processed += ts.Processed
		t.Alarms += ts.Alarms
		t.Dropped += ts.Dropped
		t.Rejected += ts.Rejected
		t.Errors += ts.Errors
		t.QueueDepth += ts.QueueDepth
		t.Panics += ts.Panics
		t.Shed += ts.Shed
		t.Updates += ts.Updates
		if ts.Health != HealthHealthy {
			t.Health = HealthQuarantined
		}
	}
	return out
}

// ShardStats is one shard's slice of a FleetStats snapshot.
type ShardStats struct {
	// Shard is the shard id; Tenants the number of homes it serves.
	Shard   int
	Tenants int
	// Hub is the shard's own stats snapshot.
	Hub HubStats
	// Health is the shard's serving health (remote link state et al).
	Health ShardHealth
}

// FleetStats is the fleet-level view Stats does not cover: the per-shard
// breakdown and the migration counters.
type FleetStats struct {
	Shards []ShardStats
	// Migrations counts completed live migrations; Replayed the gap events
	// replayed through them; GapDropped the gap events evicted under a
	// DropOldest policy while a home was mid-migration.
	Migrations uint64
	Replayed   uint64
	GapDropped uint64
	// AlarmsDropped counts alarms discarded because the fleet's fan-in
	// Alarms channel was full. A non-zero value means alarms were lost:
	// consume Alarms faster or raise HubConfig.AlarmBuffer.
	AlarmsDropped uint64
}

// FleetStats snapshots the per-shard breakdown and migration counters.
func (f *Fleet) FleetStats() FleetStats {
	f.mu.RLock()
	ids := make([]int, 0, len(f.shards))
	for id := range f.shards {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	shards := make([]Shard, len(ids))
	for i, id := range ids {
		shards[i] = f.shards[id]
	}
	f.mu.RUnlock()
	out := FleetStats{Shards: make([]ShardStats, len(ids))}
	for i, id := range ids {
		out.Shards[i] = ShardStats{
			Shard:   id,
			Tenants: len(f.router.TenantsOn(id)),
			Hub:     shards[i].Stats(),
			Health:  shards[i].Health(),
		}
	}
	out.Migrations, out.Replayed, out.GapDropped = f.router.Counters()
	out.AlarmsDropped = f.alarmsDropped.Load()
	return out
}

// Close stops intake, waits for in-flight migrations, drains and closes
// every shard hub, and closes the fan-in Alarms channel. Close is
// idempotent. A wedged home blocks Close forever; use CloseWithin to bound
// the drain.
func (f *Fleet) Close() error { return f.CloseWithin(0) }

// CloseWithin is Close with a drain deadline: when in-flight migrations and
// the shard drains do not finish within d, CloseWithin abandons the wait
// and returns ErrDrainTimeout. Intake is stopped either way; the Alarms
// channel is only closed once the abandoned drain eventually completes in
// the background (it may never, behind a wedged home). d <= 0 waits
// forever.
func (f *Fleet) CloseWithin(d time.Duration) error {
	// Flip the flag under migMu so no migration can slip its increment in
	// between the check below and this close's wait.
	f.migMu.Lock()
	if f.closed.Swap(true) {
		f.migMu.Unlock()
		return nil // already closing; only the first close reports drain errors
	}
	f.migMu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// A migration wedged on a stuck home holds this up — that is what
		// the deadline below is for.
		f.migMu.Lock()
		for f.migActive > 0 {
			f.migCond.Wait()
		}
		f.migMu.Unlock()
		f.mu.RLock()
		shards := make([]Shard, 0, len(f.shards))
		for _, s := range f.shards {
			shards = append(shards, s)
		}
		f.mu.RUnlock()
		var wg sync.WaitGroup
		var errMu sync.Mutex
		for _, s := range shards {
			wg.Add(1)
			go func(h Shard) {
				defer wg.Done()
				if err := h.Close(); err != nil {
					errMu.Lock()
					if f.closeErr == nil {
						f.closeErr = err
					}
					errMu.Unlock()
				}
			}(s)
		}
		wg.Wait()
		// Every shard's workers have exited: no further alarm deliveries.
		close(f.alarms)
	}()
	if d <= 0 {
		<-done
		return f.closeErr
	}
	select {
	case <-done:
		return f.closeErr
	case <-time.After(d):
		return ErrDrainTimeout
	}
}
