// Cluster frame range (32+): the shard control plane a front-end router
// speaks to a remote shard worker. It rides the same length-prefixed codec
// as the producer protocol (one type byte + payload, big-endian integers,
// uint16-length-prefixed strings) but is a peer-to-peer link between
// processes we control at both ends, so it multiplexes many tenants over
// one connection and carries whole checkpoint envelopes in chunks.
//
// Reliability mirrors the producer session machinery: the router assigns
// each submitted event a strictly increasing per-tenant link sequence
// number; the worker keeps a per-tenant decided watermark (every link
// sequence at or below it has been admitted or nacked) and acknowledges
// cumulatively with ShardAck. Alarms flow back under a per-tenant
// monotonically increasing alarm index with a bounded replay ring, so a
// link kill mid-stream loses nothing: ResumeTenant after a reconnect
// returns the watermark (the router retransmits only the tail) and replays
// unconfirmed alarms. See DESIGN.md §11 for the full layouts and the
// handoff state machine.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

const (
	// FrameShardHello opens a cluster link: protocol version, auth token,
	// and the router's self-chosen name (for worker-side logging).
	FrameShardHello FrameType = 32
	// FrameShardWelcome accepts a ShardHello: protocol version and the
	// worker's frame size limit.
	FrameShardWelcome FrameType = 33
	// FrameRegisterTenant announces a tenant registration (or model swap)
	// on the worker. The checkpoint envelope follows as EnvelopeChunk
	// frames and an EnvelopeDone commit; the worker answers TenantOK or
	// ShardErr after the commit.
	FrameRegisterTenant FrameType = 34
	// FrameEnvelopeChunk carries one slice of a checkpoint envelope
	// (model or state section) in either direction.
	FrameEnvelopeChunk FrameType = 35
	// FrameEnvelopeDone commits the envelope chunks accumulated for a
	// tenant: register/swap on the worker, export completion on the router.
	FrameEnvelopeDone FrameType = 36
	// FrameTenantOK is the worker's success reply to a tenant-scoped
	// control op, carrying the tenant's decided-event watermark and alarm
	// index (zero where not meaningful).
	FrameTenantOK FrameType = 37
	// FrameShardErr is the worker's failure reply to a control op.
	FrameShardErr FrameType = 38
	// FrameSubmitBatch carries one or more events for a tenant, each
	// tagged with the router-assigned link sequence number.
	FrameSubmitBatch FrameType = 39
	// FrameShardAck is the worker's cumulative per-tenant admission
	// acknowledgement: every link sequence at or below the carried
	// watermark has been decided (admitted or nacked).
	FrameShardAck FrameType = 40
	// FrameShardNack reports one refused event back to the router with
	// its link sequence number and a reason code. A nacked event is
	// decided: it advances the watermark like an admitted one.
	FrameShardNack FrameType = 41
	// FrameAlarmStream pushes one tenant alarm to the router, prefixed
	// with the worker's per-tenant alarm index.
	FrameAlarmStream FrameType = 42
	// FrameAlarmStreamAck is the router's cumulative alarm receipt; the
	// worker prunes its replay ring up to the carried index.
	FrameAlarmStreamAck FrameType = 43
	// FrameResumeTenant re-adopts a tenant after a reconnect: the payload
	// carries the highest alarm index the router has dispatched, the
	// reply (TenantOK) carries the worker's watermark so the router can
	// prune its retransmit window and resend only the tail.
	FrameResumeTenant FrameType = 44
	// FrameQuiesce asks the worker to drain the tenant's ingestion queue
	// to an event boundary; because the link is ordered, every event
	// written before the Quiesce frame is enqueued before the drain
	// begins. The TenantOK reply doubles as a final cumulative ack.
	FrameQuiesce FrameType = 45
	// FrameExportEnvelope asks the worker to export the tenant's
	// checkpoint envelope; the reply is a chunk stream ending in
	// EnvelopeDone (or a ShardErr).
	FrameExportEnvelope FrameType = 46
	// FrameDeregisterTenant removes the tenant from the worker.
	FrameDeregisterTenant FrameType = 47
	// FrameShardStatsReq asks the worker for its serving stats; answered
	// with ShardStats.
	FrameShardStatsReq FrameType = 48
	// FrameShardStats carries the worker's stats as a JSON document —
	// operational telemetry, deliberately schema-loose on the wire.
	FrameShardStats FrameType = 49
	// FrameDrain asks the worker to quiesce every tenant it hosts (the
	// prelude to a router-side final checkpoint sweep).
	FrameDrain FrameType = 50
	// FrameFlushTenant force-closes the tenant's open anomaly chains,
	// emitting any abrupt alarms before the reply.
	FrameFlushTenant FrameType = 51
)

// ShardOp identifies which control operation a TenantOK or ShardErr
// answers; the router correlates replies by op (one control op is in
// flight per link at a time).
type ShardOp uint8

const (
	OpRegister   ShardOp = 1
	OpResume     ShardOp = 2
	OpQuiesce    ShardOp = 3
	OpExport     ShardOp = 4
	OpDeregister ShardOp = 5
	OpDrain      ShardOp = 6
	OpFlush      ShardOp = 7
	OpSwap       ShardOp = 8
	OpStats      ShardOp = 9
)

func (o ShardOp) String() string {
	switch o {
	case OpRegister:
		return "register"
	case OpResume:
		return "resume"
	case OpQuiesce:
		return "quiesce"
	case OpExport:
		return "export"
	case OpDeregister:
		return "deregister"
	case OpDrain:
		return "drain"
	case OpFlush:
		return "flush"
	case OpSwap:
		return "swap"
	case OpStats:
		return "stats"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// RegisterTenant flags.
const (
	// RegFlagHasState: the envelope carries a state section too (restore
	// mid-stream detector state, not just the model).
	RegFlagHasState = 1 << 0
	// RegFlagSwap: hot-swap the model under an already-registered tenant
	// instead of registering a new one.
	RegFlagSwap = 1 << 1
)

// Envelope section kinds for EnvelopeChunk.
const (
	EnvModel uint8 = 0
	EnvState uint8 = 1
)

// RegisterTenant announces a registration, restore, or model swap.
type RegisterTenant struct {
	Tenant string
	Flags  uint8
	Queue  uint32 // per-tenant ingestion queue capacity (0 = worker default)
	Policy uint8  // backpressure policy ordinal (worker-side interpretation)
}

// EnvelopeChunk is one slice of a checkpoint envelope in transit.
type EnvelopeChunk struct {
	Tenant string
	Kind   uint8 // EnvModel or EnvState
	Data   []byte
}

// TenantOK is the worker's success reply to a control op.
type TenantOK struct {
	Op        ShardOp
	Tenant    string
	Watermark uint64 // decided-event watermark (link sequence)
	AlarmIdx  uint64 // current alarm index
}

// ShardErr is the worker's failure reply to a control op.
type ShardErr struct {
	Op     ShardOp
	Tenant string
	Code   Code
	Detail string
}

func (e ShardErr) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("wire: shard %s %q: %s", e.Op, e.Tenant, e.Code)
	}
	return fmt.Sprintf("wire: shard %s %q: %s: %s", e.Op, e.Tenant, e.Code, e.Detail)
}

// BatchEvent is one event in a SubmitBatch: the router-assigned link
// sequence number plus the producer-visible event (whose own Seq survives
// for alarm attribution).
type BatchEvent struct {
	Link uint64
	Ev   Event
}

// ShardNack reports one refused event on the cluster link.
type ShardNack struct {
	Tenant string
	Link   uint64
	Code   Code
	Detail string
}

func (n ShardNack) Error() string {
	if n.Detail == "" {
		return fmt.Sprintf("wire: shard nack %q link %d: %s", n.Tenant, n.Link, n.Code)
	}
	return fmt.Sprintf("wire: shard nack %q link %d: %s: %s", n.Tenant, n.Link, n.Code, n.Detail)
}

// AppendShardHello encodes a ShardHello frame onto dst.
func AppendShardHello(dst []byte, token, router string) ([]byte, error) {
	dst, at := begin(dst, FrameShardHello)
	dst = append(dst, Version)
	var err error
	if dst, err = appendString(dst, token); err != nil {
		return nil, err
	}
	if dst, err = appendString(dst, router); err != nil {
		return nil, err
	}
	return frame(dst, at), nil
}

// ParseShardHello decodes a ShardHello payload.
func ParseShardHello(p []byte) (version uint8, token, router string, err error) {
	d := decoder{p: p}
	version = d.u8()
	token = d.str()
	router = d.str()
	if d.fail {
		return 0, "", "", fmt.Errorf("%w: shard-hello", ErrBadFrame)
	}
	return version, token, router, nil
}

// AppendShardWelcome encodes a ShardWelcome frame onto dst.
func AppendShardWelcome(dst []byte, maxFrame uint32) []byte {
	dst, at := begin(dst, FrameShardWelcome)
	dst = append(dst, Version)
	dst = binary.BigEndian.AppendUint32(dst, maxFrame)
	return frame(dst, at)
}

// ParseShardWelcome decodes a ShardWelcome payload.
func ParseShardWelcome(p []byte) (version uint8, maxFrame uint32, err error) {
	d := decoder{p: p}
	version = d.u8()
	maxFrame = d.u32()
	if d.fail {
		return 0, 0, fmt.Errorf("%w: shard-welcome", ErrBadFrame)
	}
	return version, maxFrame, nil
}

// AppendRegisterTenant encodes a RegisterTenant frame onto dst.
func AppendRegisterTenant(dst []byte, r RegisterTenant) ([]byte, error) {
	dst, at := begin(dst, FrameRegisterTenant)
	var err error
	if dst, err = appendString(dst, r.Tenant); err != nil {
		return nil, err
	}
	dst = append(dst, r.Flags)
	dst = binary.BigEndian.AppendUint32(dst, r.Queue)
	dst = append(dst, r.Policy)
	return frame(dst, at), nil
}

// ParseRegisterTenant decodes a RegisterTenant payload.
func ParseRegisterTenant(p []byte) (RegisterTenant, error) {
	d := decoder{p: p}
	r := RegisterTenant{Tenant: d.str(), Flags: d.u8()}
	r.Queue = d.u32()
	r.Policy = d.u8()
	if d.fail || r.Tenant == "" {
		return RegisterTenant{}, fmt.Errorf("%w: register-tenant", ErrBadFrame)
	}
	return r, nil
}

// AppendEnvelopeChunk encodes an EnvelopeChunk frame onto dst.
func AppendEnvelopeChunk(dst []byte, c EnvelopeChunk) ([]byte, error) {
	dst, at := begin(dst, FrameEnvelopeChunk)
	var err error
	if dst, err = appendString(dst, c.Tenant); err != nil {
		return nil, err
	}
	dst = append(dst, c.Kind)
	dst = append(dst, c.Data...)
	return frame(dst, at), nil
}

// ParseEnvelopeChunk decodes an EnvelopeChunk payload. The Data slice
// aliases p and is only valid until the reader's next frame.
func ParseEnvelopeChunk(p []byte) (EnvelopeChunk, error) {
	d := decoder{p: p}
	c := EnvelopeChunk{Tenant: d.str(), Kind: d.u8()}
	if d.fail || c.Tenant == "" || c.Kind > EnvState {
		return EnvelopeChunk{}, fmt.Errorf("%w: envelope-chunk", ErrBadFrame)
	}
	c.Data = d.p
	return c, nil
}

// AppendTenantOK encodes a TenantOK frame onto dst.
func AppendTenantOK(dst []byte, ok TenantOK) ([]byte, error) {
	dst, at := begin(dst, FrameTenantOK)
	dst = append(dst, byte(ok.Op))
	var err error
	if dst, err = appendString(dst, ok.Tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, ok.Watermark)
	dst = binary.BigEndian.AppendUint64(dst, ok.AlarmIdx)
	return frame(dst, at), nil
}

// ParseTenantOK decodes a TenantOK payload.
func ParseTenantOK(p []byte) (TenantOK, error) {
	d := decoder{p: p}
	ok := TenantOK{Op: ShardOp(d.u8()), Tenant: d.str()}
	ok.Watermark = d.u64()
	ok.AlarmIdx = d.u64()
	if d.fail {
		return TenantOK{}, fmt.Errorf("%w: tenant-ok", ErrBadFrame)
	}
	return ok, nil
}

// AppendShardErr encodes a ShardErr frame onto dst.
func AppendShardErr(dst []byte, e ShardErr) ([]byte, error) {
	dst, at := begin(dst, FrameShardErr)
	dst = append(dst, byte(e.Op))
	var err error
	if dst, err = appendString(dst, e.Tenant); err != nil {
		return nil, err
	}
	dst = append(dst, byte(e.Code))
	if dst, err = appendString(dst, e.Detail); err != nil {
		return nil, err
	}
	return frame(dst, at), nil
}

// ParseShardErr decodes a ShardErr payload.
func ParseShardErr(p []byte) (ShardErr, error) {
	d := decoder{p: p}
	e := ShardErr{Op: ShardOp(d.u8()), Tenant: d.str()}
	e.Code = Code(d.u8())
	e.Detail = d.str()
	if d.fail {
		return ShardErr{}, fmt.Errorf("%w: shard-err", ErrBadFrame)
	}
	return e, nil
}

// AppendSubmitBatch encodes a SubmitBatch frame onto dst.
func AppendSubmitBatch(dst []byte, tenant string, evs []BatchEvent) ([]byte, error) {
	if len(evs) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: batch of %d events", ErrBadFrame, len(evs))
	}
	dst, at := begin(dst, FrameSubmitBatch)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(evs)))
	for _, be := range evs {
		dst = binary.BigEndian.AppendUint64(dst, be.Link)
		dst = binary.BigEndian.AppendUint64(dst, be.Ev.Seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(be.Ev.Time.UnixNano()))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(be.Ev.Value))
		if dst, err = appendString(dst, be.Ev.Device); err != nil {
			return nil, err
		}
	}
	return frame(dst, at), nil
}

// ParseSubmitBatch decodes a SubmitBatch payload, appending the events to
// evs (reuse a scratch slice to keep the hot path allocation-light).
func ParseSubmitBatch(p []byte, evs []BatchEvent) (string, []BatchEvent, error) {
	d := decoder{p: p}
	tenant := d.str()
	n := int(d.u16())
	// Each entry costs at least 34 payload bytes; refuse counts that
	// cannot fit the remaining payload before allocating.
	if n > len(d.p)/34+1 {
		return "", evs, fmt.Errorf("%w: submit-batch", ErrBadFrame)
	}
	for i := 0; i < n && !d.fail; i++ {
		be := BatchEvent{Link: d.u64()}
		be.Ev.Seq = d.u64()
		be.Ev.Time = time.Unix(0, int64(d.u64())).UTC()
		be.Ev.Value = math.Float64frombits(d.u64())
		be.Ev.Device = d.str()
		evs = append(evs, be)
	}
	if d.fail || tenant == "" {
		return "", evs, fmt.Errorf("%w: submit-batch", ErrBadFrame)
	}
	return tenant, evs, nil
}

// AppendShardAck encodes a ShardAck frame onto dst.
func AppendShardAck(dst []byte, tenant string, watermark uint64) ([]byte, error) {
	dst, at := begin(dst, FrameShardAck)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, watermark)
	return frame(dst, at), nil
}

// ParseShardAck decodes a ShardAck payload.
func ParseShardAck(p []byte) (string, uint64, error) {
	d := decoder{p: p}
	tenant := d.str()
	watermark := d.u64()
	if d.fail || tenant == "" {
		return "", 0, fmt.Errorf("%w: shard-ack", ErrBadFrame)
	}
	return tenant, watermark, nil
}

// AppendShardNack encodes a ShardNack frame onto dst.
func AppendShardNack(dst []byte, n ShardNack) ([]byte, error) {
	dst, at := begin(dst, FrameShardNack)
	var err error
	if dst, err = appendString(dst, n.Tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, n.Link)
	dst = append(dst, byte(n.Code))
	if dst, err = appendString(dst, n.Detail); err != nil {
		return nil, err
	}
	return frame(dst, at), nil
}

// ParseShardNack decodes a ShardNack payload.
func ParseShardNack(p []byte) (ShardNack, error) {
	d := decoder{p: p}
	n := ShardNack{Tenant: d.str(), Link: d.u64()}
	n.Code = Code(d.u8())
	n.Detail = d.str()
	if d.fail || n.Tenant == "" {
		return ShardNack{}, fmt.Errorf("%w: shard-nack", ErrBadFrame)
	}
	return n, nil
}

// AppendAlarmStream encodes an AlarmStream frame onto dst.
func AppendAlarmStream(dst []byte, tenant string, idx uint64, a Alarm) ([]byte, error) {
	dst, at := begin(dst, FrameAlarmStream)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, idx)
	return appendAlarmBody(dst, at, a)
}

// ParseAlarmStream decodes an AlarmStream payload.
func ParseAlarmStream(p []byte) (tenant string, idx uint64, a Alarm, err error) {
	d := decoder{p: p}
	tenant = d.str()
	idx = d.u64()
	if d.fail || tenant == "" {
		return "", 0, Alarm{}, fmt.Errorf("%w: alarm-stream", ErrBadFrame)
	}
	a, err = parseAlarmBody(&d)
	if err != nil {
		return "", 0, Alarm{}, err
	}
	return tenant, idx, a, nil
}

// AppendAlarmStreamAck encodes an AlarmStreamAck frame onto dst.
func AppendAlarmStreamAck(dst []byte, tenant string, idx uint64) ([]byte, error) {
	dst, at := begin(dst, FrameAlarmStreamAck)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, idx)
	return frame(dst, at), nil
}

// ParseAlarmStreamAck decodes an AlarmStreamAck payload.
func ParseAlarmStreamAck(p []byte) (string, uint64, error) {
	d := decoder{p: p}
	tenant := d.str()
	idx := d.u64()
	if d.fail || tenant == "" {
		return "", 0, fmt.Errorf("%w: alarm-stream-ack", ErrBadFrame)
	}
	return tenant, idx, nil
}

// AppendResumeTenant encodes a ResumeTenant frame onto dst.
func AppendResumeTenant(dst []byte, tenant string, alarmIdx uint64) ([]byte, error) {
	dst, at := begin(dst, FrameResumeTenant)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	dst = binary.BigEndian.AppendUint64(dst, alarmIdx)
	return frame(dst, at), nil
}

// ParseResumeTenant decodes a ResumeTenant payload.
func ParseResumeTenant(p []byte) (string, uint64, error) {
	d := decoder{p: p}
	tenant := d.str()
	alarmIdx := d.u64()
	if d.fail || tenant == "" {
		return "", 0, fmt.Errorf("%w: resume-tenant", ErrBadFrame)
	}
	return tenant, alarmIdx, nil
}

// AppendTenantFrame encodes one of the tenant-name-only control frames
// (EnvelopeDone, Quiesce, ExportEnvelope, DeregisterTenant, FlushTenant).
func AppendTenantFrame(dst []byte, t FrameType, tenant string) ([]byte, error) {
	dst, at := begin(dst, t)
	var err error
	if dst, err = appendString(dst, tenant); err != nil {
		return nil, err
	}
	return frame(dst, at), nil
}

// ParseTenantFrame decodes a tenant-name-only control payload.
func ParseTenantFrame(p []byte) (string, error) {
	d := decoder{p: p}
	tenant := d.str()
	if d.fail || tenant == "" {
		return "", fmt.Errorf("%w: tenant frame", ErrBadFrame)
	}
	return tenant, nil
}

// AppendShardStatsReq encodes a ShardStatsReq frame onto dst.
func AppendShardStatsReq(dst []byte) []byte {
	dst, at := begin(dst, FrameShardStatsReq)
	return frame(dst, at)
}

// AppendShardStats encodes a ShardStats frame: an opaque JSON document.
func AppendShardStats(dst []byte, doc []byte) []byte {
	dst, at := begin(dst, FrameShardStats)
	dst = append(dst, doc...)
	return frame(dst, at)
}

// AppendDrain encodes a Drain frame onto dst. millis bounds the worker's
// per-tenant quiesce wait; zero means wait indefinitely.
func AppendDrain(dst []byte, millis uint64) []byte {
	dst, at := begin(dst, FrameDrain)
	dst = binary.BigEndian.AppendUint64(dst, millis)
	return frame(dst, at)
}

// ParseDrain decodes a Drain payload.
func ParseDrain(p []byte) (uint64, error) {
	d := decoder{p: p}
	millis := d.u64()
	if d.fail {
		return 0, fmt.Errorf("%w: drain", ErrBadFrame)
	}
	return millis, nil
}
