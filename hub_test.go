package causaliot

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ghostSequence is a stream whose last event is a ghost light activation
// (light on with nobody around) that a system trained on trainingLog
// reliably alarms on.
func ghostSequence() []Event {
	return []Event{
		{Time: t0, Device: "presence", Value: 1},
		{Time: t0.Add(3 * time.Second), Device: "light", Value: 1},
		{Time: t0.Add(time.Minute), Device: "presence", Value: 0},
		{Time: t0.Add(time.Minute + 4*time.Second), Device: "light", Value: 0},
		{Time: t0.Add(2 * time.Hour), Device: "light", Value: 1},
	}
}

func TestObserveEventDetection(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	mon, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate state report: light is already off.
	det, err := mon.ObserveEvent(Event{Time: t0, Device: "light", Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !det.Duplicate || det.Score != 0 || det.Alarm != nil {
		t.Errorf("duplicate detection = %+v", det)
	}
	// A real state change carries the unified state.
	det, err = mon.ObserveEvent(Event{Time: t0, Device: "presence", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if det.Duplicate || det.State != 1 {
		t.Errorf("presence detection = %+v", det)
	}
	// Observe stays as a compatible wrapper.
	alarm, score, err := mon.Observe(Event{Time: t0.Add(3 * time.Second), Device: "light", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if alarm != nil || score < 0 {
		t.Errorf("Observe wrapper = %v, %v", alarm, score)
	}
}

func TestObserveEventSentinelErrors(t *testing.T) {
	sys := mustTrain(t, Config{})
	mon, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.ObserveEvent(Event{Time: t0, Device: "ghost", Value: 1}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("unknown device error = %v", err)
	}
	if _, err := mon.ObserveEvent(Event{Time: t0, Device: "meter", Value: math.NaN()}); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("NaN reading error = %v", err)
	}
	if _, err := mon.ObserveEvent(Event{Time: t0, Device: "meter", Value: math.Inf(1)}); !errors.Is(err, ErrValueOutOfRange) {
		t.Errorf("Inf reading error = %v", err)
	}
	// Skippable errors leave the detector resumable: a normal event still
	// processes cleanly afterwards.
	if _, err := mon.ObserveEvent(Event{Time: t0, Device: "presence", Value: 1}); err != nil {
		t.Errorf("stream did not resume after skippable errors: %v", err)
	}
}

func TestObserveBatch(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	mon, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	seq := ghostSequence()
	dets, err := mon.ObserveBatch(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(seq) {
		t.Fatalf("batch returned %d detections for %d events", len(dets), len(seq))
	}
	if dets[len(dets)-1].Alarm == nil {
		t.Error("ghost activation not detected by batch")
	}
	// Batch stops at the first error, returning partial results.
	mon2, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	bad := []Event{seq[0], {Time: t0, Device: "ghost", Value: 1}, seq[1]}
	dets, err = mon2.ObserveBatch(bad)
	if !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("batch error = %v", err)
	}
	if len(dets) != 1 {
		t.Errorf("partial batch = %d detections, want 1", len(dets))
	}
}

func TestMonitorSwapPreservesChain(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2, KMax: 3})
	sys2 := mustTrainSeed(t, Config{Tau: 3, KMax: 3}, 2)
	mon, err := sys.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	// Seed a chain: ghost light activation starts tracking.
	if _, err := mon.ObserveEvent(Event{Time: t0, Device: "light", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if mon.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", mon.Pending())
	}
	// Hot-swap to a retrained system with a different tau: the tracked
	// chain and phantom window must survive.
	if err := mon.Swap(sys2); err != nil {
		t.Fatal(err)
	}
	if mon.Pending() != 1 {
		t.Fatalf("Pending after swap = %d, want 1 (chain lost)", mon.Pending())
	}
	alarm := mon.Flush()
	if alarm == nil || len(alarm.Events) != 1 || alarm.Events[0].Device != "light" {
		t.Fatalf("flushed alarm = %+v", alarm)
	}
	// Swapping to an incompatible inventory fails.
	foreign, err := Train(
		[]Device{{Name: "other", Type: Switch}},
		trainingLogFor("other", 200, 3), Config{Tau: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Swap(foreign); err == nil {
		t.Error("swap to a different inventory accepted")
	}
	if err := mon.Swap(nil); err == nil {
		t.Error("swap to nil accepted")
	}
}

// mustTrainSeed trains on a different log seed (same inventory).
func mustTrainSeed(t *testing.T, cfg Config, seed int64) *System {
	t.Helper()
	sys, err := Train(testDevices(), trainingLog(400, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// trainingLogFor synthesizes a minimal single-device log.
func trainingLogFor(device string, n int, seed int64) []Event {
	var log []Event
	ts := t0
	for i := 0; i < n; i++ {
		ts = ts.Add(30 * time.Second)
		log = append(log, Event{Time: ts, Device: device, Value: float64(i % 2)})
	}
	return log
}

func TestHubServesManyHomes(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	h := NewHub(HubConfig{Workers: 4, QueueSize: 64})
	const homes = 4
	for i := 0; i < homes; i++ {
		if err := h.Register(fmt.Sprintf("home-%d", i), sys, TenantOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	var alarms sync.Map // tenant -> count
	var consumed sync.WaitGroup
	consumed.Add(1)
	go func() {
		defer consumed.Done()
		for ta := range h.Alarms() {
			if ta.Alarm == nil || ta.Score <= 0 {
				t.Errorf("malformed alarm delivery: %+v", ta)
			}
			n, _ := alarms.LoadOrStore(ta.Tenant, new(atomic.Uint64))
			n.(*atomic.Uint64).Add(1)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < homes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("home-%d", i)
			for _, ev := range ghostSequence() {
				if err := h.Submit(name, ev); err != nil {
					t.Errorf("submit %s: %v", name, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	consumed.Wait()
	for i := 0; i < homes; i++ {
		name := fmt.Sprintf("home-%d", i)
		n, ok := alarms.Load(name)
		if !ok || n.(*atomic.Uint64).Load() == 0 {
			t.Errorf("%s raised no alarm", name)
		}
	}
	s := h.Stats()
	if len(s.Tenants) != homes {
		t.Fatalf("stats tenants = %d", len(s.Tenants))
	}
	want := uint64(homes * len(ghostSequence()))
	if s.Total.Processed != want || s.Total.Ingested != want {
		t.Errorf("stats total = %+v, want %d processed", s.Total, want)
	}
	if s.Total.Alarms == 0 {
		t.Error("no alarms counted")
	}
}

// TestHubSwapUnderLoad hot-swaps models while producers are streaming;
// nothing may be lost and the stream must keep validating cleanly.
func TestHubSwapUnderLoad(t *testing.T) {
	sysA := mustTrain(t, Config{Tau: 2})
	sysB := mustTrainSeed(t, Config{Tau: 2}, 2)
	h := NewHub(HubConfig{Workers: 4, QueueSize: 256})
	if err := h.Register("home", sysA, TenantOptions{
		OnAlarm: func(string, *Alarm, float64) {},
	}); err != nil {
		t.Fatal(err)
	}
	const producers, each, swaps = 4, 250, 40
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ts := t0
			for j := 0; j < each; j++ {
				ts = ts.Add(time.Second)
				ev := Event{Time: ts, Device: "light", Value: float64(j % 2)}
				if err := h.Submit("home", ev); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(i)
	}
	for k := 0; k < swaps; k++ {
		sys := sysA
		if k%2 == 0 {
			sys = sysB
		}
		if err := h.Swap("home", sys); err != nil {
			t.Fatalf("swap %d: %v", k, err)
		}
	}
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	s := h.Stats().Total
	if s.Processed != producers*each || s.Dropped != 0 || s.Errors != 0 {
		t.Fatalf("hot swap lost events: %+v", s)
	}
	if err := h.Swap("ghost", sysA); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("swap unknown tenant = %v", err)
	}
}

func TestHubCallbacksAndSkippableErrors(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	var alarmed, errored atomic.Uint64
	h := NewHub(HubConfig{Workers: 2})
	err := h.Register("home", sys, TenantOptions{
		Backpressure: BackpressureReject,
		QueueSize:    128,
		OnAlarm: func(tenant string, alarm *Alarm, score float64) {
			if tenant == "home" && alarm != nil {
				alarmed.Add(1)
			}
		},
		OnError: func(tenant string, ev Event, err error) {
			if errors.Is(err, ErrUnknownDevice) && ev.Device == "intruder" {
				errored.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := ghostSequence()
	// An unknown-device event mid-stream is skipped, not fatal.
	for _, ev := range append(seq[:2:2], append([]Event{{Time: t0, Device: "intruder", Value: 1}}, seq[2:]...)...) {
		if err := h.Submit("home", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if alarmed.Load() == 0 {
		t.Error("OnAlarm callback never fired")
	}
	if errored.Load() != 1 {
		t.Errorf("OnError fired %d times, want 1", errored.Load())
	}
	s := h.Stats().Total
	if s.Errors != 1 || s.Processed != uint64(len(seq)+1) {
		t.Errorf("stats = %+v", s)
	}
}

func TestHubFlushReportsPartialChain(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2, KMax: 3})
	h := NewHub(HubConfig{Workers: 1})
	if err := h.Register("home", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	// Ghost activation seeds a chain that never reaches kmax.
	if err := h.Submit("home", Event{Time: t0, Device: "light", Value: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for h.Stats().Total.Processed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("event never processed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := h.Flush("home"); err != nil {
		t.Fatal(err)
	}
	select {
	case ta := <-h.Alarms():
		if ta.Tenant != "home" || ta.Alarm == nil || !ta.Alarm.Abrupt {
			t.Errorf("flushed alarm = %+v", ta)
		}
	default:
		t.Error("flush delivered no alarm")
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHubRegisterValidation(t *testing.T) {
	sys := mustTrain(t, Config{})
	h := NewHub(HubConfig{Workers: 1})
	if err := h.Register("home", nil, TenantOptions{}); err == nil {
		t.Error("nil system accepted")
	}
	if err := h.Register("home", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Deregister("home"); err != nil {
		t.Fatal(err)
	}
	if err := h.Submit("home", Event{}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("submit after deregister = %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("second close = %v", err)
	}
	if err := h.Submit("home", Event{}); !errors.Is(err, ErrHubClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

// TestHubQuarantineObservable drives the facade circuit breaker: a home
// whose events keep failing (reports from a device the model was never
// trained on) trips quarantine after the configured failure count, the state
// is visible in Stats, and further submissions fail with ErrQuarantined.
func TestHubQuarantineObservable(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	h := NewHub(HubConfig{Workers: 1, QuarantineAfter: 4, QuarantineBackoff: time.Hour})
	defer h.Close()
	if err := h.Register("sick", sys, TenantOptions{OnError: func(string, Event, error) {}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Register("healthy", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := h.Submit("sick", Event{Device: "intruder", Value: 1}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	var ts TenantStats
	for {
		for _, s := range h.Stats().Tenants {
			if s.Tenant == "sick" {
				ts = s
			}
		}
		if ts.Health == HealthQuarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped; stats %+v", ts)
		}
		time.Sleep(time.Millisecond)
	}
	if ts.Errors != 4 || ts.LastError == "" {
		t.Errorf("stats at trip = %+v", ts)
	}
	if got := ts.Health.String(); got != "quarantined" {
		t.Errorf("health string = %q", got)
	}
	if err := h.Submit("sick", Event{Device: "light", Value: 1}); !errors.Is(err, ErrQuarantined) {
		t.Errorf("quarantined submit = %v, want ErrQuarantined", err)
	}
	// The healthy neighbour is untouched.
	if err := h.Submit("healthy", Event{Device: "light", Value: 1}); err != nil {
		t.Errorf("healthy submit = %v", err)
	}
	if s := h.Stats(); s.Total.Health != HealthQuarantined {
		t.Errorf("total health = %v, want quarantined roll-up", s.Total.Health)
	}
}

// TestHubCloseWithinDeadline pins the facade drain deadline: a home wedged
// inside its alarm callback cannot hang shutdown — CloseWithin returns
// ErrDrainTimeout and leaves the Alarms channel open for the late delivery.
func TestHubCloseWithinDeadline(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	release := make(chan struct{})
	defer close(release)
	h := NewHub(HubConfig{Workers: 1})
	wedged := func(string, *Alarm, float64) { <-release }
	if err := h.Register("home", sys, TenantOptions{OnAlarm: wedged}); err != nil {
		t.Fatal(err)
	}
	for _, e := range ghostSequence() {
		if err := h.Submit("home", e); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond) // let the worker wedge in the callback
	if err := h.CloseWithin(100 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("CloseWithin = %v, want ErrDrainTimeout", err)
	}
	if err := h.Submit("home", Event{}); !errors.Is(err, ErrHubClosed) {
		t.Errorf("submit after abandoned close = %v", err)
	}
	// A second close is a no-op, not a panic on the still-open channel.
	if err := h.Close(); err != nil {
		t.Errorf("close after timeout = %v", err)
	}
}

// TestHubAlarmRouteAndSeq: a SetAlarmRoute sink takes precedence over the
// home's OnAlarm callback, delivered alarms carry the Seq of the completing
// event, and clearing the route restores the previous delivery.
func TestHubAlarmRouteAndSeq(t *testing.T) {
	sys := mustTrain(t, Config{Tau: 2})
	h := NewHub(HubConfig{Workers: 2})
	var viaCallback atomic.Uint64
	if err := h.Register("home", sys, TenantOptions{
		OnAlarm: func(string, *Alarm, float64) { viaCallback.Add(1) },
	}); err != nil {
		t.Fatal(err)
	}
	routed := make(chan TenantAlarm, 4)
	if err := h.SetAlarmRoute("home", func(ta TenantAlarm) { routed <- ta }); err != nil {
		t.Fatal(err)
	}
	if err := h.SetAlarmRoute("ghost", nil); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("route for unknown tenant = %v", err)
	}
	for i, ev := range ghostSequence() {
		ev.Seq = uint64(100 + i)
		if err := h.Submit("home", ev); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case ta := <-routed:
		if ta.Tenant != "home" || ta.Alarm == nil {
			t.Fatalf("routed alarm = %+v", ta)
		}
		// The ghost activation is the 5th event of the sequence.
		if ta.Seq != 104 {
			t.Fatalf("alarm seq = %d, want 104", ta.Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("routed alarm not delivered")
	}
	if viaCallback.Load() != 0 {
		t.Fatal("OnAlarm fired despite an active route")
	}
	// Clearing the route restores the OnAlarm delivery.
	if err := h.SetAlarmRoute("home", nil); err != nil {
		t.Fatal(err)
	}
	for i, ev := range ghostSequence() {
		ev.Time = ev.Time.Add(6 * time.Hour)
		ev.Seq = uint64(200 + i)
		if err := h.Submit("home", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if viaCallback.Load() == 0 {
		t.Fatal("OnAlarm not restored after clearing the route")
	}
	select {
	case ta := <-routed:
		t.Fatalf("cleared route still received %+v", ta)
	default:
	}
}
