// Package experiments reproduces the paper's evaluation (§VI): one runner
// per table and figure, all sharing a single simulated-testbed pipeline
// (simulate → preprocess → split → mine → calibrate threshold). The cmd/
// experiments binary prints the same rows the paper reports; bench_test.go
// wraps each runner in a benchmark.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/causaliot/causaliot/internal/automation"
	"github.com/causaliot/causaliot/internal/baselines"
	"github.com/causaliot/causaliot/internal/dig"
	"github.com/causaliot/causaliot/internal/event"
	"github.com/causaliot/causaliot/internal/inject"
	"github.com/causaliot/causaliot/internal/metrics"
	"github.com/causaliot/causaliot/internal/monitor"
	"github.com/causaliot/causaliot/internal/pc"
	"github.com/causaliot/causaliot/internal/preprocess"
	"github.com/causaliot/causaliot/internal/sim"
	"github.com/causaliot/causaliot/internal/timeseries"
)

// Config parameterizes the shared pipeline. Zero values select the defaults
// used throughout EXPERIMENTS.md.
type Config struct {
	// Seed drives the simulator and the anomaly injectors.
	Seed int64
	// Days of simulated resident life (default 14; the chatty presence
	// model yields event volumes per day comparable to the paper's
	// testbeds, so two weeks roughly matches their data sizes).
	Days int
	// MeanGap between activities (default 3 minutes).
	MeanGap time.Duration
	// Tau is the maximum time lag (default 3; the paper uses 2 on data
	// whose room transits emit one event — ours emit two).
	Tau int
	// Alpha is the CI significance threshold (default 0.001, §VI-B).
	Alpha float64
	// MaxCondSize caps conditioning sets (default 3).
	MaxCondSize int
	// MinObsPerDOF is the G² small-sample heuristic (default 5).
	MinObsPerDOF int
	// MaxParents caps the causes kept per device (default 8).
	MaxParents int
	// EventAnchors selects event-anchored CI tests (see pc.Config).
	EventAnchors bool
	// Smoothing is the CPT Laplace pseudo-count (default 0.01: strong enough to keep unseen contexts defined, weak enough that a context seen hundreds of times without a given transition drives the anomaly score toward 1).
	Smoothing float64
	// Quantile is the threshold calculator's percentile (default 99).
	Quantile float64
	// TrainFrac is the train/test split (default 0.8, §VI-A).
	TrainFrac float64
}

func (c Config) withDefaults() Config {
	if c.Days <= 0 {
		c.Days = 14
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 3 * time.Minute
	}
	if c.Tau <= 0 {
		c.Tau = 3
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.001
	}
	if c.MaxCondSize == 0 {
		c.MaxCondSize = 3
	}
	if c.MinObsPerDOF == 0 {
		c.MinObsPerDOF = 5
	}
	if c.MaxParents == 0 {
		c.MaxParents = 8
	}
	if c.Smoothing == 0 {
		c.Smoothing = 0.01
	}
	if c.Quantile <= 0 {
		c.Quantile = 99
	}
	if c.TrainFrac <= 0 || c.TrainFrac >= 1 {
		c.TrainFrac = 0.8
	}
	return c
}

// Pipeline is the shared experimental setup.
type Pipeline struct {
	Config    Config
	Testbed   *sim.Testbed
	Pre       *preprocess.Preprocessor
	Train     *timeseries.Series
	Test      *timeseries.Series
	Tau       int
	Graph     *dig.Graph
	Removals  map[int][]pc.Removal
	MineStats pc.Stats
	Threshold float64
	Engine    *automation.Engine
	GT        []sim.Interaction
}

// Setup runs the full pipeline on the given testbed (nil selects the
// ContextAct-like testbed).
func Setup(tb *sim.Testbed, cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if tb == nil {
		tb = sim.ContextActLike()
	}
	simr, err := sim.NewSimulator(tb, sim.Config{Seed: cfg.Seed, Days: cfg.Days, MeanGap: cfg.MeanGap})
	if err != nil {
		return nil, fmt.Errorf("experiments: simulator: %w", err)
	}
	log, err := simr.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: simulate: %w", err)
	}
	pre, err := preprocess.New(tb.Devices, preprocess.Config{TauOverride: cfg.Tau})
	if err != nil {
		return nil, err
	}
	res, err := pre.Process(log)
	if err != nil {
		return nil, fmt.Errorf("experiments: preprocess: %w", err)
	}
	train, test, err := res.Series.Split(cfg.TrainFrac)
	if err != nil {
		return nil, err
	}
	miner := pc.NewMiner(pc.Config{
		Alpha:        cfg.Alpha,
		MaxCondSize:  cfg.MaxCondSize,
		MinObsPerDOF: cfg.MinObsPerDOF,
		MaxParents:   cfg.MaxParents,
		EventAnchors: cfg.EventAnchors,
	})
	graph, removals, mineStats, err := miner.Mine(train, res.Tau, cfg.Smoothing)
	if err != nil {
		return nil, fmt.Errorf("experiments: mine: %w", err)
	}
	threshold, err := monitor.Threshold(graph, train, cfg.Quantile)
	if err != nil {
		return nil, fmt.Errorf("experiments: threshold: %w", err)
	}
	if threshold < 0.5 {
		threshold = 0.5 // same floor the public API applies
	}
	engine, err := automation.NewEngine(tb.Rules)
	if err != nil {
		return nil, err
	}
	return &Pipeline{
		Config:    cfg,
		Testbed:   tb,
		Pre:       pre,
		Train:     train,
		Test:      test,
		Tau:       res.Tau,
		Graph:     graph,
		Removals:  removals,
		MineStats: mineStats,
		Threshold: threshold,
		Engine:    engine,
		GT:        tb.MechanisticGroundTruth(),
	}, nil
}

// MiningResult is the §VI-B / Table III evaluation.
type MiningResult struct {
	Confusion  metrics.Confusion
	ByCategory map[sim.Category]int // true positives per source category
	RulesFound int                  // of the installed automation rules
	FalsePairs [][2]string
	Missed     [][2]string
}

// EvaluateMining compares the mined device pairs against the testbed's
// mechanistic ground truth.
func (p *Pipeline) EvaluateMining() MiningResult {
	gtSet := make(map[[2]string]sim.Category, len(p.GT))
	var truthPairs [][2]string
	for _, in := range p.GT {
		pair := [2]string{in.Cause, in.Outcome}
		gtSet[pair] = in.Category
		truthPairs = append(truthPairs, pair)
	}
	var minedPairs [][2]string
	for _, dp := range p.Graph.DevicePairs() {
		minedPairs = append(minedPairs, [2]string{
			p.Train.Registry.Name(dp.Cause),
			p.Train.Registry.Name(dp.Outcome),
		})
	}
	result := MiningResult{
		Confusion:  metrics.PairConfusion(minedPairs, truthPairs),
		ByCategory: make(map[sim.Category]int),
	}
	minedSet := make(map[[2]string]bool, len(minedPairs))
	for _, pair := range minedPairs {
		minedSet[pair] = true
		if cat, ok := gtSet[pair]; ok {
			result.ByCategory[cat]++
		} else {
			result.FalsePairs = append(result.FalsePairs, pair)
		}
	}
	for _, pair := range truthPairs {
		if !minedSet[pair] {
			result.Missed = append(result.Missed, pair)
		}
	}
	for _, r := range p.Testbed.Rules {
		if minedSet[[2]string{r.TriggerDev, r.ActionDev}] {
			result.RulesFound++
		}
	}
	sort.Slice(result.FalsePairs, func(i, j int) bool { return lessPair(result.FalsePairs[i], result.FalsePairs[j]) })
	sort.Slice(result.Missed, func(i, j int) bool { return lessPair(result.Missed[i], result.Missed[j]) })
	return result
}

func lessPair(a, b [2]string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// detectStream runs the CausalIoT detector over a stream and returns the
// alarmed positions (per-event Seq values reported in alarms).
func (p *Pipeline) detectStream(res *inject.Result, kmax int) (map[int]bool, error) {
	det, err := monitor.NewDetector(p.Graph, p.Threshold, kmax, res.Initial)
	if err != nil {
		return nil, err
	}
	alarmed := make(map[int]bool)
	record := func(alarm *monitor.Alarm) {
		if alarm == nil {
			return
		}
		for _, ev := range alarm.Events {
			alarmed[ev.Seq] = true
		}
	}
	for _, st := range res.Steps {
		alarm, _, err := det.Process(st)
		if err != nil {
			return nil, err
		}
		record(alarm)
	}
	record(det.Flush())
	return alarmed, nil
}

// ContextualResult is one row of Table IV.
type ContextualResult struct {
	Case      inject.ContextualCase
	Injected  int
	Confusion metrics.Confusion
}

// DefaultContextualN scales the paper's injection density to the testing
// stream: 5,000 anomalies among 16,950 testing states is roughly one
// anomaly per 2.4 normal events, and precision is only comparable across
// systems at comparable anomaly density.
func (p *Pipeline) DefaultContextualN() int {
	n := p.Test.Len() * 2 / 5
	if n < 20 {
		n = 20
	}
	return n
}

// ContextualDetection runs Table IV's experiment for one anomaly case:
// inject n anomalies into the testing series and run 1-sequence detection.
func (p *Pipeline) ContextualDetection(c inject.ContextualCase, n int) (ContextualResult, error) {
	if n <= 0 {
		n = p.DefaultContextualN()
	}
	injector, err := inject.New(p.Testbed, p.Test, p.Config.Seed+int64(c)*1000)
	if err != nil {
		return ContextualResult{}, err
	}
	res, err := injector.Contextual(c, n)
	if err != nil {
		return ContextualResult{}, err
	}
	alarmed, err := p.detectStream(res, 1)
	if err != nil {
		return ContextualResult{}, err
	}
	conf := metrics.ClassifyTolerant(len(res.Steps), 1, alarmed, res.Injected)
	return ContextualResult{Case: c, Injected: len(res.Injected), Confusion: conf}, nil
}

// AllContextualCases lists Table IV's rows in order.
func AllContextualCases() []inject.ContextualCase {
	return []inject.ContextualCase{
		inject.SensorFault,
		inject.BurglarIntrusion,
		inject.RemoteControl,
		inject.MaliciousRule,
	}
}

// BaselineResult is one bar group of Figure 5.
type BaselineResult struct {
	Detector  string
	Case      inject.ContextualCase
	Confusion metrics.Confusion
}

// BaselineComparison reproduces Figure 5 for one anomaly case: the same
// injected stream is replayed through CausalIoT and the three baselines.
func (p *Pipeline) BaselineComparison(c inject.ContextualCase, n int) ([]BaselineResult, error) {
	if n <= 0 {
		n = p.DefaultContextualN()
	}
	injector, err := inject.New(p.Testbed, p.Test, p.Config.Seed+int64(c)*1000)
	if err != nil {
		return nil, err
	}
	res, err := injector.Contextual(c, n)
	if err != nil {
		return nil, err
	}

	var out []BaselineResult

	alarmed, err := p.detectStream(res, 1)
	if err != nil {
		return nil, err
	}
	out = append(out, BaselineResult{
		Detector:  "causaliot",
		Case:      c,
		Confusion: metrics.ClassifyTolerant(len(res.Steps), 1, alarmed, res.Injected),
	})

	markov, err := baselines.NewMarkov(p.Tau)
	if err != nil {
		return nil, err
	}
	ocsvm := baselines.NewOCSVM()
	haw, err := baselines.NewHAWatcher(p.alignedDevices())
	if err != nil {
		return nil, err
	}
	for _, det := range []baselines.Detector{markov, ocsvm, haw} {
		if err := det.Fit(p.Train); err != nil {
			return nil, err
		}
		if err := det.Reset(res.Initial); err != nil {
			return nil, err
		}
		flagged := make(map[int]bool)
		for i, st := range res.Steps {
			anomalous, err := det.Process(st)
			if err != nil {
				return nil, err
			}
			if anomalous {
				flagged[i+1] = true
			}
		}
		out = append(out, BaselineResult{
			Detector:  det.Name(),
			Case:      c,
			Confusion: metrics.ClassifyTolerant(len(res.Steps), 1, flagged, res.Injected),
		})
	}
	return out, nil
}

// alignedDevices returns the testbed inventory in registry-index order (the
// layout HAWatcher expects).
func (p *Pipeline) alignedDevices() []event.Device {
	out := make([]event.Device, p.Train.Registry.Len())
	for i := range out {
		d, _ := p.Testbed.Device(p.Train.Registry.Name(i))
		out[i] = d
	}
	return out
}

// CollectiveResult is one row of Table V.
type CollectiveResult struct {
	Case   inject.CollectiveCase
	KMax   int
	Report metrics.ChainReport
}

// DefaultCollectiveN scales the paper's 1,000 chains to the testing stream.
func (p *Pipeline) DefaultCollectiveN(kmax int) int {
	n := p.Test.Len() / (3 * (kmax + 3))
	if n < 10 {
		n = 10
	}
	return n
}

// CollectiveDetection runs Table V's experiment for one case and k_max.
func (p *Pipeline) CollectiveDetection(c inject.CollectiveCase, nChains, kmax int) (CollectiveResult, error) {
	if nChains <= 0 {
		nChains = p.DefaultCollectiveN(kmax)
	}
	injector, err := inject.New(p.Testbed, p.Test, p.Config.Seed+int64(c)*100+int64(kmax))
	if err != nil {
		return CollectiveResult{}, err
	}
	res, err := injector.Collective(c, nChains, kmax, p.Engine)
	if err != nil {
		return CollectiveResult{}, err
	}
	alarmed, err := p.detectStream(res, kmax)
	if err != nil {
		return CollectiveResult{}, err
	}
	return CollectiveResult{
		Case:   c,
		KMax:   kmax,
		Report: metrics.EvaluateChains(res.Chains, alarmed),
	}, nil
}

// AllCollectiveCases lists Table V's cases in order.
func AllCollectiveCases() []inject.CollectiveCase {
	return []inject.CollectiveCase{
		inject.BurglarWandering,
		inject.ActuatorManipulation,
		inject.ChainedAutomation,
	}
}
