package timeseries

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustRegistry(t *testing.T, names ...string) *Registry {
	t.Helper()
	r, err := NewRegistry(names)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRegistry(t *testing.T) {
	r := mustRegistry(t, "a", "b", "c")
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if i, ok := r.Index("b"); !ok || i != 1 {
		t.Errorf("Index(b) = %d,%v", i, ok)
	}
	if _, ok := r.Index("zzz"); ok {
		t.Error("unknown device found")
	}
	if r.Name(2) != "c" {
		t.Errorf("Name(2) = %q", r.Name(2))
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestNewRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewRegistry([]string{"a", "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewRegistry([]string{""}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestRegistryNamesIsACopy(t *testing.T) {
	r := mustRegistry(t, "a", "b")
	names := r.Names()
	names[0] = "mutated"
	if r.Name(0) != "a" {
		t.Error("registry internal state mutated through Names()")
	}
}

func TestFromStepsDerivesStates(t *testing.T) {
	r := mustRegistry(t, "light", "heater", "temp")
	s, err := FromSteps(r, State{0, 0, 0}, []Step{
		{Device: 0, Value: 1},
		{Device: 1, Value: 1},
		{Device: 0, Value: 0},
		{Device: 2, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []State{
		{0, 0, 0},
		{1, 0, 0},
		{1, 1, 0},
		{0, 1, 0},
		{0, 1, 1},
	}
	if len(s.States) != len(want) {
		t.Fatalf("got %d states, want %d", len(s.States), len(want))
	}
	for j := range want {
		if !s.State(j).Equal(want[j]) {
			t.Errorf("S^%d = %v, want %v", j, s.State(j), want[j])
		}
	}
	if s.Len() != 4 || s.NumDevices() != 3 {
		t.Errorf("Len=%d NumDevices=%d", s.Len(), s.NumDevices())
	}
}

func TestFromStepsValidation(t *testing.T) {
	r := mustRegistry(t, "a")
	if _, err := FromSteps(nil, State{0}, nil); err != ErrNoRegistry {
		t.Errorf("nil registry: %v", err)
	}
	if _, err := FromSteps(r, State{0, 0}, nil); err != ErrInitialShape {
		t.Errorf("bad initial shape: %v", err)
	}
	if _, err := FromSteps(r, State{0}, []Step{{Device: 5, Value: 0}}); err == nil {
		t.Error("out-of-range device accepted")
	}
	if _, err := FromSteps(r, State{0}, []Step{{Device: 0, Value: 2}}); err == nil {
		t.Error("non-binary value accepted")
	}
}

func TestStatesAreImmutableSnapshots(t *testing.T) {
	r := mustRegistry(t, "a", "b")
	s, err := FromSteps(r, State{0, 0}, []Step{{Device: 0, Value: 1}, {Device: 1, Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a later state must not affect earlier ones (no aliasing).
	s.States[2][0] = 9
	if s.States[1][0] != 1 {
		t.Error("states alias each other")
	}
}

func TestLaggedColumn(t *testing.T) {
	r := mustRegistry(t, "x", "y")
	s, err := FromSteps(r, State{0, 0}, []Step{
		{Device: 0, Value: 1}, // S^1 = 1,0
		{Device: 1, Value: 1}, // S^2 = 1,1
		{Device: 0, Value: 0}, // S^3 = 0,1
	})
	if err != nil {
		t.Fatal(err)
	}
	tau := 2
	if n := s.SnapshotCount(tau); n != 2 {
		t.Fatalf("SnapshotCount = %d, want 2 (anchors j=2,3)", n)
	}
	// Device x at lag 0 over anchors j=2,3: S^2[x]=1, S^3[x]=0.
	col, err := s.LaggedColumn(0, 0, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col, []int{1, 0}) {
		t.Errorf("x lag0 = %v", col)
	}
	// Device x at lag 2: S^0[x]=0, S^1[x]=1.
	col, err = s.LaggedColumn(0, 2, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col, []int{0, 1}) {
		t.Errorf("x lag2 = %v", col)
	}
	// Device y at lag 1: S^1[y]=0, S^2[y]=1.
	col, err = s.LaggedColumn(1, 1, tau)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col, []int{0, 1}) {
		t.Errorf("y lag1 = %v", col)
	}
}

func TestLaggedColumnValidation(t *testing.T) {
	r := mustRegistry(t, "x")
	s, _ := FromSteps(r, State{0}, []Step{{Device: 0, Value: 1}})
	if _, err := s.LaggedColumn(3, 0, 1); err == nil {
		t.Error("bad device accepted")
	}
	if _, err := s.LaggedColumn(0, 2, 1); err == nil {
		t.Error("lag > tau accepted")
	}
	if _, err := s.LaggedColumn(0, -1, 1); err == nil {
		t.Error("negative lag accepted")
	}
}

func TestSnapshotCountWhenSeriesTooShort(t *testing.T) {
	r := mustRegistry(t, "x")
	s, _ := FromSteps(r, State{0}, []Step{{Device: 0, Value: 1}})
	if n := s.SnapshotCount(5); n != 0 {
		t.Errorf("SnapshotCount with tau>m = %d, want 0", n)
	}
}

func TestStepAt(t *testing.T) {
	r := mustRegistry(t, "x", "y")
	s, _ := FromSteps(r, State{0, 0}, []Step{{Device: 1, Value: 1}})
	st, err := s.StepAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Device != 1 || st.Value != 1 {
		t.Errorf("StepAt(1) = %+v", st)
	}
	if _, err := s.StepAt(0); err == nil {
		t.Error("StepAt(0) accepted")
	}
	if _, err := s.StepAt(2); err == nil {
		t.Error("StepAt past end accepted")
	}
}

func TestSplit(t *testing.T) {
	r := mustRegistry(t, "x", "y")
	steps := []Step{
		{Device: 0, Value: 1},
		{Device: 1, Value: 1},
		{Device: 0, Value: 0},
		{Device: 1, Value: 0},
		{Device: 0, Value: 1},
	}
	s, _ := FromSteps(r, State{0, 0}, steps)
	train, test, err := s.Split(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 3 || test.Len() != 2 {
		t.Fatalf("split sizes %d/%d, want 3/2", train.Len(), test.Len())
	}
	// The test series must start from the state at the cut.
	if !test.State(0).Equal(s.State(3)) {
		t.Errorf("test initial = %v, want %v", test.State(0), s.State(3))
	}
	// Concatenated states must reproduce the full series.
	if !test.State(test.Len()).Equal(s.State(s.Len())) {
		t.Error("final state mismatch after split")
	}
}

func TestSplitValidation(t *testing.T) {
	r := mustRegistry(t, "x")
	s, _ := FromSteps(r, State{0}, []Step{{Device: 0, Value: 1}})
	for _, frac := range []float64{0, 1, -0.5, 0.5} { // 0.5 of 1 event is degenerate
		if _, _, err := s.Split(frac); err == nil {
			t.Errorf("Split(%v) accepted", frac)
		}
	}
}

// Property: for any random series, S^j and S^{j-1} differ in at most the
// reporting device's coordinate, and LaggedColumn agrees with direct state
// indexing.
func TestSeriesConsistencyProperty(t *testing.T) {
	f := func(seed int64, rawN, rawDev uint8) bool {
		nDev := int(rawDev%5) + 1
		m := int(rawN%40) + 1
		rng := rand.New(rand.NewSource(seed))
		names := make([]string, nDev)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		reg, err := NewRegistry(names)
		if err != nil {
			return false
		}
		initial := make(State, nDev)
		steps := make([]Step, m)
		for j := range steps {
			steps[j] = Step{Device: rng.Intn(nDev), Value: rng.Intn(2)}
		}
		s, err := FromSteps(reg, initial, steps)
		if err != nil {
			return false
		}
		for j := 1; j <= m; j++ {
			diff := 0
			for d := 0; d < nDev; d++ {
				if s.State(j)[d] != s.State(j - 1)[d] {
					diff++
					if d != steps[j-1].Device {
						return false
					}
				}
			}
			if diff > 1 {
				return false
			}
		}
		tau := 1 + rng.Intn(3)
		if s.SnapshotCount(tau) == 0 {
			return true
		}
		dev := rng.Intn(nDev)
		lag := rng.Intn(tau + 1)
		col, err := s.LaggedColumn(dev, lag, tau)
		if err != nil {
			return false
		}
		for i, v := range col {
			if v != s.State(tau + i - lag)[dev] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRegistrySame(t *testing.T) {
	a := mustRegistry(t, "x", "y")
	b := mustRegistry(t, "x", "y")
	c := mustRegistry(t, "y", "x")
	d := mustRegistry(t, "x")
	if !a.Same(a) || !a.Same(b) {
		t.Error("structurally equal registries reported different")
	}
	if a.Same(c) {
		t.Error("order-swapped registry reported same")
	}
	if a.Same(d) || a.Same(nil) {
		t.Error("shorter/nil registry reported same")
	}
}
