package timeseries

import "fmt"

// Window is the flat ring-buffer form of the recent τ+1 system states
// (S^{t-τ}, ..., S^t): one backing []int of (τ+1)×n cells, row-major, with a
// head index marking the physical row of the present state. Sliding the
// window on an event is a head advance, one row copy inside the backing
// array (the present state carried into the slot of the expiring oldest
// state), and a single cell write — no per-event allocation, unlike the
// clone-per-event []State window it replaces on the serving hot path.
//
// Window performs no per-read validation: At is the hot read of the Event
// Monitor's scoring loop, so bounds are the caller's contract (the Detector
// validates the device index and value once per event). The reference
// clone-window implementation in internal/monitor keeps the checked API.
type Window struct {
	n    int // devices per row
	tau  int
	head int   // physical row of the present state, in [0, tau]
	buf  []int // (tau+1)*n cells, row-major
}

// NewWindow builds a window seeded with the initial state replicated into
// every row, exactly like the phantom state machine's seed (§V-C).
func NewWindow(tau int, initial State) (*Window, error) {
	if tau < 1 {
		return nil, fmt.Errorf("timeseries: window tau %d < 1", tau)
	}
	n := len(initial)
	w := &Window{n: n, tau: tau, buf: make([]int, (tau+1)*n)}
	for r := 0; r <= tau; r++ {
		copy(w.buf[r*n:(r+1)*n], initial)
	}
	return w, nil
}

// Tau returns the window's maximum time lag.
func (w *Window) Tau() int { return w.tau }

// NumDevices returns the number of devices per state row.
func (w *Window) NumDevices() int { return w.n }

// At returns the state of device dev at lag steps before the present
// (lag 0 is the present). Bounds are the caller's contract: dev must lie in
// [0, NumDevices()) and lag in [0, Tau()].
func (w *Window) At(dev, lag int) int {
	r := w.head - lag
	if r < 0 {
		r += w.tau + 1
	}
	return w.buf[r*w.n+dev]
}

// Advance slides the window one step for the event (dev, value): the present
// row is carried into the slot of the expiring oldest state and the
// reporting device's cell is overwritten. Zero allocations. The caller must
// have validated dev and value (binary) — the Detector does this once per
// event.
func (w *Window) Advance(dev, value int) {
	next := w.head + 1
	if next > w.tau {
		next = 0
	}
	cur, nxt := w.head*w.n, next*w.n
	copy(w.buf[nxt:nxt+w.n], w.buf[cur:cur+w.n])
	w.buf[nxt+dev] = value
	w.head = next
}

// State returns a copy of the present system state.
func (w *Window) State() State {
	out := make(State, w.n)
	w.CopyState(out)
	return out
}

// CopyState copies the present system state into dst (which must have
// NumDevices() cells) without allocating.
func (w *Window) CopyState(dst State) {
	off := w.head * w.n
	copy(dst, w.buf[off:off+w.n])
}

// Snapshot exports the window's cells in head-normalized order — rows
// oldest state first, present state last, (tau+1)×NumDevices() cells — so
// two windows holding identical states snapshot identically regardless of
// where their physical heads sit. The result is a copy; it is the
// serializable form RestoreWindow accepts.
func (w *Window) Snapshot() []int {
	out := make([]int, len(w.buf))
	for lag := 0; lag <= w.tau; lag++ {
		r := w.head - lag
		if r < 0 {
			r += w.tau + 1
		}
		dst := (w.tau - lag) * w.n
		copy(out[dst:dst+w.n], w.buf[r*w.n:(r+1)*w.n])
	}
	return out
}

// RestoreWindow rebuilds a window from a Snapshot: cells holds (tau+1)×n
// values, oldest state first. Cell values are not validated beyond shape —
// like At/Advance, value semantics are the caller's contract (the monitor
// layer validates binary states before restoring).
func RestoreWindow(tau, n int, cells []int) (*Window, error) {
	if tau < 1 {
		return nil, fmt.Errorf("timeseries: window tau %d < 1", tau)
	}
	if n < 1 {
		return nil, fmt.Errorf("timeseries: window with %d devices", n)
	}
	if len(cells) != (tau+1)*n {
		return nil, fmt.Errorf("timeseries: window snapshot has %d cells, want %d", len(cells), (tau+1)*n)
	}
	w := &Window{n: n, tau: tau, head: tau, buf: make([]int, len(cells))}
	copy(w.buf, cells)
	return w, nil
}

// Resize adapts the window to a new maximum lag, keeping the most recent
// states aligned on the present; when the window grows, the oldest known
// state is replicated into the new, older slots — the same semantics as the
// reference clone-window resize. Resize allocates (it runs on the rare
// model hot-swap path, not per event).
func (w *Window) Resize(tau int) {
	if tau == w.tau {
		return
	}
	buf := make([]int, (tau+1)*w.n)
	for lag := 0; lag <= tau; lag++ {
		src := lag
		if src > w.tau {
			src = w.tau
		}
		r := w.head - src
		if r < 0 {
			r += w.tau + 1
		}
		dst := tau - lag
		copy(buf[dst*w.n:(dst+1)*w.n], w.buf[r*w.n:(r+1)*w.n])
	}
	w.tau, w.head, w.buf = tau, tau, buf
}
