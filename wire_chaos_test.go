package causaliot

import (
	"bytes"
	"errors"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/causaliot/causaliot/internal/netchaos"
	"github.com/causaliot/causaliot/internal/wire"
)

// netchaosGate skips the network-chaos soaks unless the netchaos tier is
// running (make netchaos sets the variable), keeping make check's
// wall-clock budget unchanged.
func netchaosGate(t *testing.T) {
	t.Helper()
	if os.Getenv("CAUSALIOT_NETCHAOS") == "" {
		t.Skip("netchaos soak: set CAUSALIOT_NETCHAOS=1 (or run make netchaos)")
	}
}

// chaosStream builds blocks of the ghost pattern — normal activity ending
// in a ghost light activation — each block 4h apart so every block raises
// its alarm. Seq is assigned 1..5*blocks.
func chaosStream(blocks int) []Event {
	evs := make([]Event, 0, blocks*5)
	seq := uint64(0)
	for b := 0; b < blocks; b++ {
		base := t0.Add(time.Duration(b) * 4 * time.Hour)
		for _, ev := range []Event{
			{Time: base, Device: "presence", Value: 1},
			{Time: base.Add(3 * time.Second), Device: "light", Value: 1},
			{Time: base.Add(time.Minute), Device: "presence", Value: 0},
			{Time: base.Add(time.Minute + 4*time.Second), Device: "light", Value: 0},
			{Time: base.Add(2 * time.Hour), Device: "light", Value: 1},
		} {
			seq++
			ev.Seq = seq
			evs = append(evs, ev)
		}
	}
	return evs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// baselineRun feeds the stream to an uninterrupted hub and returns the
// sorted alarm seqs plus the final model+state export.
func baselineRun(t *testing.T, sys *System, evs []Event) ([]uint64, []byte) {
	t.Helper()
	h := NewHub(HubConfig{Workers: 2})
	defer h.Close()
	if err := h.Register("home", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []uint64
	if err := h.SetAlarmRoute("home", func(ta TenantAlarm) {
		mu.Lock()
		seqs = append(seqs, ta.Seq)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if err := h.Submit("home", ev); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "baseline processing", func() bool {
		return h.Stats().Total.Processed == uint64(len(evs))
	})
	var buf bytes.Buffer
	if err := h.Export("home", ExportOptions{Model: &buf, State: &buf}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := append([]uint64(nil), seqs...)
	mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, buf.Bytes()
}

// TestNetchaosSessionSoak is the acceptance soak: the same event stream
// through a netchaos proxy injecting seeded kills/corruptions/trickles —
// plus a scripted flap and partition — must land exactly like an
// uninterrupted run: zero lost alarms, zero duplicate admissions
// (watermark-verified), byte-identical final checkpoint.
func TestNetchaosSessionSoak(t *testing.T) {
	netchaosGate(t)
	sys := mustTrain(t, Config{Tau: 2})
	evs := chaosStream(100)
	wantSeqs, wantExport := baselineRun(t, sys, evs)
	if len(wantSeqs) == 0 {
		t.Fatal("baseline raised no alarms; the soak would prove nothing")
	}

	h := NewHub(HubConfig{Workers: 2})
	defer h.Close()
	if err := h.Register("home", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	addr, ws := startWireServer(t, h, WireConfig{Token: "tok", AckEvery: 16})
	proxy, err := netchaos.New(netchaos.Config{
		Target:    addr,
		Seed:      1234,
		Weights:   netchaos.Weights{Kill: 0.5, Corrupt: 0.15, Trickle: 0.15},
		MinFrames: 20,
		MaxFrames: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var mu sync.Mutex
	var gotSeqs []uint64
	sc, err := wire.OpenSession(wire.SessionConfig{
		Addr:    proxy.Addr(),
		Session: "soak",
		Client: wire.ClientConfig{
			Token:  "tok",
			Tenant: "home",
			OnAlarm: func(a wire.Alarm) {
				mu.Lock()
				gotSeqs = append(gotSeqs, a.Seq)
				mu.Unlock()
			},
		},
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MaxAttempts: 10000,
		JitterSeed:  99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	for i, ev := range evs {
		wev := wire.Event{Seq: ev.Seq, Time: ev.Time, Device: ev.Device, Value: ev.Value}
		for {
			err := sc.Send(wev)
			if err == nil {
				break
			}
			if errors.Is(err, wire.ErrSendWindowFull) {
				sc.Flush()
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatalf("send %d: %v", ev.Seq, err)
		}
		switch i {
		case 200:
			proxy.KillAll() // scripted flap on top of the seeded faults
		case 350:
			proxy.Partition()
			time.Sleep(50 * time.Millisecond)
			proxy.Heal()
		}
		if i%20 == 19 {
			// Flush and briefly yield so the proxy's frame-aligned
			// forwarder keeps pace with the producer — otherwise the
			// scripted kills outrun the seeded per-connection faults.
			sc.Flush()
			time.Sleep(200 * time.Microsecond)
		}
	}
	sc.Flush()

	waitFor(t, "exactly-once admission", func() bool {
		return ws.Stats().Events == uint64(len(evs))
	})
	waitFor(t, "stream drained", func() bool {
		return h.Stats().Total.Processed == uint64(len(evs))
	})
	waitFor(t, "alarm parity", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotSeqs) >= len(wantSeqs)
	})

	st := ws.Stats()
	if st.Events != uint64(len(evs)) {
		t.Errorf("admitted %d events, want %d exactly once", st.Events, len(evs))
	}
	if st.Nacks != 0 {
		t.Errorf("%d nacks on a block-policy hub", st.Nacks)
	}
	if st.Duplicates > st.Retransmits {
		t.Errorf("duplicates (%d) exceed retransmits (%d): a first delivery was double-admitted", st.Duplicates, st.Retransmits)
	}
	if st.AlarmsDropped != 0 {
		t.Errorf("%d alarms dropped — session ring must bank, not shed", st.AlarmsDropped)
	}
	if st.Resumes < 2 {
		t.Errorf("only %d resumes: the chaos schedule never bit", st.Resumes)
	}
	if ps := proxy.Stats(); ps.Killed == 0 {
		t.Errorf("seeded kills never fired (proxy %+v): the soak only exercised scripted faults", ps)
	}
	cst := sc.Stats()
	if cst.Reconnects == 0 {
		t.Error("client never reconnected")
	}
	t.Logf("soak: %d resumes, %d retransmits, %d duplicates dropped, %d alarm replays, proxy %+v",
		st.Resumes, st.Retransmits, st.Duplicates, st.AlarmReplays, proxy.Stats())

	mu.Lock()
	got := append([]uint64(nil), gotSeqs...)
	mu.Unlock()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(wantSeqs) {
		t.Fatalf("alarm count %d != baseline %d (loss or duplication)", len(got), len(wantSeqs))
	}
	for i := range got {
		if got[i] != wantSeqs[i] {
			t.Fatalf("alarm seqs diverge at %d: %d != %d", i, got[i], wantSeqs[i])
		}
	}

	// Clean shutdown retires the session, then the checkpoint must match
	// the uninterrupted run byte for byte.
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Export("home", ExportOptions{Model: &buf, State: &buf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantExport) {
		t.Fatalf("final checkpoint diverges from the uninterrupted run (%d vs %d bytes)", buf.Len(), len(wantExport))
	}
}

// TestNetchaosKillDuringMigration lands a connection kill inside a fleet
// live migration: the session must resume across both disruptions with
// exactly-once admission and zero alarm loss.
func TestNetchaosKillDuringMigration(t *testing.T) {
	netchaosGate(t)
	sys := mustTrain(t, Config{Tau: 2})
	evs := chaosStream(60)
	wantSeqs, wantExport := baselineRun(t, sys, evs)

	f := NewFleet(FleetConfig{Shards: 2, Hub: HubConfig{Workers: 1}})
	defer f.Close()
	if err := f.Register("home", sys, TenantOptions{}); err != nil {
		t.Fatal(err)
	}
	addr, ws := startWireServer(t, f, WireConfig{AckEvery: 8})
	proxy, err := netchaos.New(netchaos.Config{Target: addr, Seed: 77, MinFrames: 40, MaxFrames: 120,
		Weights: netchaos.Weights{Kill: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	var mu sync.Mutex
	var gotSeqs []uint64
	sc, err := wire.OpenSession(wire.SessionConfig{
		Addr:    proxy.Addr(),
		Session: "migrating",
		Client: wire.ClientConfig{Tenant: "home", OnAlarm: func(a wire.Alarm) {
			mu.Lock()
			gotSeqs = append(gotSeqs, a.Seq)
			mu.Unlock()
		}},
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MaxAttempts: 10000,
		JitterSeed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	migrated := make(chan error, 1)
	for i, ev := range evs {
		wev := wire.Event{Seq: ev.Seq, Time: ev.Time, Device: ev.Device, Value: ev.Value}
		for {
			err := sc.Send(wev)
			if err == nil {
				break
			}
			if errors.Is(err, wire.ErrSendWindowFull) {
				sc.Flush()
				time.Sleep(time.Millisecond)
				continue
			}
			t.Fatalf("send %d: %v", ev.Seq, err)
		}
		if i == len(evs)/2 {
			sc.Flush()
			// The kill lands while the migration pauses the home's
			// stream: the resumed connection replays into the gap and
			// the watermark keeps admission exactly-once.
			shard, err := f.AddShard()
			if err != nil {
				t.Fatal(err)
			}
			go func() { migrated <- f.Migrate("home", shard) }()
			proxy.KillAll()
		}
		if i%25 == 24 {
			sc.Flush()
		}
	}
	sc.Flush()
	if err := <-migrated; err != nil {
		t.Fatalf("migrate: %v", err)
	}
	waitFor(t, "exactly-once admission", func() bool {
		return ws.Stats().Events == uint64(len(evs))
	})
	waitFor(t, "stream drained", func() bool {
		return f.Stats().Total.Processed == uint64(len(evs))
	})
	waitFor(t, "alarm parity", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gotSeqs) >= len(wantSeqs)
	})
	st := ws.Stats()
	if st.Events != uint64(len(evs)) || st.Nacks != 0 || st.AlarmsDropped != 0 {
		t.Errorf("stats = %+v: admission or alarm accounting broken", st)
	}
	mu.Lock()
	got := append([]uint64(nil), gotSeqs...)
	mu.Unlock()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(wantSeqs) {
		t.Fatalf("alarm count %d != baseline %d", len(got), len(wantSeqs))
	}
	for i := range got {
		if got[i] != wantSeqs[i] {
			t.Fatalf("alarm seqs diverge at %d: %d != %d", i, got[i], wantSeqs[i])
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Export("home", ExportOptions{Model: &buf, State: &buf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), wantExport) {
		t.Fatalf("post-migration checkpoint diverges from the uninterrupted run (%d vs %d bytes)", buf.Len(), len(wantExport))
	}
}
