package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that require at least one
// observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for samples with fewer than one element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MeanStd returns the mean and population standard deviation of xs in a
// single pass.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// WithinThreeSigma reports whether x falls inside the interval
// [mean-3*std, mean+3*std]. The event preprocessor uses the three-sigma rule
// to filter extreme numeric readings (paper §V-A).
func WithinThreeSigma(x, mean, std float64) bool {
	return x >= mean-3*std && x <= mean+3*std
}

// Percentile returns the qth percentile (q in [0,100]) of xs using linear
// interpolation between closest ranks. The input slice is not modified.
// It returns ErrEmpty when xs is empty and an error when q is out of range.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := q / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}
