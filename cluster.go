package causaliot

import (
	"bytes"
	"crypto/subtle"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/causaliot/causaliot/internal/cluster"
	"github.com/causaliot/causaliot/internal/wire"
)

// ErrShardUnavailable marks an operation that needed a remote shard whose
// link is down, gave up reconnecting, or timed out mid-operation. Event
// submission does not return it — submissions bank in the link window and
// replay on resume — but control operations (migration, export, swap) do:
// they need a live link and the caller decides whether to retry.
var ErrShardUnavailable = errors.New("causaliot: remote shard unavailable")

// ClusterWorkerConfig tunes one shard worker process.
type ClusterWorkerConfig struct {
	// Hub configures the worker's serving hub. The worker needs no training
	// data: every tenant arrives as a checkpoint envelope over the wire.
	Hub HubConfig
	// Token, when non-empty, must match the router's ShardHello token.
	Token string
	// MaxFrame caps accepted frame sizes; 0 selects the wire default.
	MaxFrame int
	// IdleTimeout evicts a router link that delivers no frame for this
	// long; WriteTimeout bounds socket writes; AckEvery is the cumulative
	// ack cadence; AlarmRing caps the per-tenant unconfirmed-alarm replay
	// ring. Zero selects the cluster defaults.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	AckEvery     int
	AlarmRing    int
	// Logf receives operational log lines; nil uses the standard logger.
	Logf func(format string, args ...any)
}

// ClusterWorker is one multi-process shard: a serving hub fronted by the
// cluster wire protocol. A router process (NewCluster / Fleet.AddRemoteShard)
// registers tenants onto it by streaming checkpoint envelopes, submits their
// events with exactly-once admission, and receives their alarms back — so a
// worker process starts from nothing but a listen address and a token.
type ClusterWorker struct {
	hub    *Hub
	worker *cluster.Worker
}

// NewClusterWorker builds a shard worker; call Serve with a listener to
// start accepting router links.
func NewClusterWorker(cfg ClusterWorkerConfig) (*ClusterWorker, error) {
	h := NewHub(cfg.Hub)
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Backend:      &shardHubBackend{h: h, token: cfg.Token},
		Classify:     classifyWireError,
		MaxFrame:     cfg.MaxFrame,
		IdleTimeout:  cfg.IdleTimeout,
		WriteTimeout: cfg.WriteTimeout,
		AckEvery:     cfg.AckEvery,
		AlarmRing:    cfg.AlarmRing,
		Logf:         logf,
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	return &ClusterWorker{hub: h, worker: w}, nil
}

// Serve accepts router links on ln until the listener fails or the worker
// is closed; a clean Close returns nil.
func (w *ClusterWorker) Serve(ln net.Listener) error { return w.worker.Serve(ln) }

// Hub exposes the worker's serving hub, e.g. for local stats.
func (w *ClusterWorker) Hub() *Hub { return w.hub }

// StatsJSON reports the worker's protocol counters with the hub's serving
// stats embedded — the same document a router's ShardStats request fetches.
func (w *ClusterWorker) StatsJSON() ([]byte, error) {
	st := w.worker.Stats()
	doc, err := json.Marshal(w.hub.Stats())
	if err != nil {
		return nil, err
	}
	st.Backend = doc
	return json.Marshal(st)
}

// Close stops accepting router links and drains and closes the hub; every
// hosted tenant's queued events are processed first. Idempotent.
func (w *ClusterWorker) Close() error { return w.CloseWithin(0) }

// CloseWithin is Close with a drain deadline (see Hub.CloseWithin).
func (w *ClusterWorker) CloseWithin(d time.Duration) error {
	w.worker.Close()
	return w.hub.CloseWithin(d)
}

// shardHubBackend adapts a *Hub to the cluster worker's Backend surface.
type shardHubBackend struct {
	h     *Hub
	token string
}

func (b *shardHubBackend) Authenticate(token string) error {
	if b.token == "" {
		return nil
	}
	if subtle.ConstantTimeCompare([]byte(token), []byte(b.token)) != 1 {
		return ErrBadAuth
	}
	return nil
}

func (b *shardHubBackend) Register(tenant string, model, state []byte, queue int, policy uint8) error {
	sys, err := Load(bytes.NewReader(model))
	if err != nil {
		return fmt.Errorf("causaliot: cluster register %q: %w", tenant, err)
	}
	var mon *Monitor
	if state == nil {
		mon, err = sys.NewMonitor()
	} else {
		mon, err = sys.RestoreMonitor(bytes.NewReader(state))
	}
	if err != nil {
		return fmt.Errorf("causaliot: cluster register %q: %w", tenant, err)
	}
	opts := TenantOptions{QueueSize: queue, Backpressure: BackpressurePolicy(policy)}
	if err := b.h.RegisterMonitor(tenant, mon, opts); err != nil {
		mon.Close()
		return err
	}
	return nil
}

func (b *shardHubBackend) Swap(tenant string, model []byte) error {
	sys, err := Load(bytes.NewReader(model))
	if err != nil {
		return fmt.Errorf("causaliot: cluster swap %q: %w", tenant, err)
	}
	return b.h.Swap(tenant, sys)
}

func (b *shardHubBackend) Deregister(tenant string) error { return b.h.Deregister(tenant) }

func (b *shardHubBackend) Submit(tenant string, ev wire.Event) error {
	return b.h.Submit(tenant, Event{Time: ev.Time, Device: ev.Device, Value: ev.Value, Seq: ev.Seq})
}

func (b *shardHubBackend) RouteAlarms(tenant string, sink func(wire.Alarm)) error {
	if sink == nil {
		return b.h.SetAlarmRoute(tenant, nil)
	}
	return b.h.SetAlarmRoute(tenant, func(ta TenantAlarm) { sink(wireAlarm(ta)) })
}

func (b *shardHubBackend) Quiesce(tenant string) error { return b.h.inner.Quiesce(tenant) }

func (b *shardHubBackend) Export(tenant string) (model, state []byte, err error) {
	var m, s bytes.Buffer
	if err := b.h.Export(tenant, ExportOptions{Model: &m, State: &s}); err != nil {
		return nil, nil, err
	}
	return m.Bytes(), s.Bytes(), nil
}

func (b *shardHubBackend) Flush(tenant string) error { return b.h.Flush(tenant) }

func (b *shardHubBackend) Drain(d time.Duration) error {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for _, ts := range b.h.Stats().Tenants {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrDrainTimeout
		}
		if err := b.h.inner.Quiesce(ts.Tenant); err != nil && !errors.Is(err, ErrUnknownTenant) {
			return err
		}
	}
	return nil
}

func (b *shardHubBackend) StatsJSON() ([]byte, error) { return json.Marshal(b.h.Stats()) }

// RemoteShardConfig names one shard worker a router attaches to.
type RemoteShardConfig struct {
	// Addr is the worker's listen address. Required.
	Addr string
	// Token is presented on the shard link; must match the worker's.
	Token string
	// TLS, when non-nil, dials the worker over TLS with this config.
	TLS *tls.Config
	// MaxFrame caps frame sizes; Window the per-tenant unacknowledged-event
	// ring (full window blocks or rejects per the tenant's backpressure
	// policy). Zero selects the cluster defaults.
	MaxFrame int
	Window   int
	// DialTimeout bounds each dial+handshake; ControlTimeout each control
	// op's reply; KeepAlive the idle ping cadence. Zero selects defaults.
	DialTimeout    time.Duration
	ControlTimeout time.Duration
	KeepAlive      time.Duration
	// MaxAttempts bounds consecutive failed reconnects before the link
	// gives up; BackoffMin/BackoffMax bound the reconnect backoff. Zero
	// selects defaults.
	MaxAttempts int
	BackoffMin  time.Duration
	BackoffMax  time.Duration
	// Logf receives operational log lines; nil uses the standard logger.
	Logf func(format string, args ...any)
}

// remoteShard adapts a cluster proxy to the fleet's Shard surface. The
// conversion layer keeps the facade's error sentinels intact across the
// process boundary: a worker-side refusal comes back as the same errors.Is-
// matchable sentinel a local hub would have returned.
type remoteShard struct {
	addr  string
	p     *cluster.Proxy
	nacks atomic.Uint64

	mu    sync.Mutex
	sinks map[string]func(TenantAlarm)

	// statsMu guards the last successfully fetched worker stats snapshot,
	// served when the link (or the whole proxy) cannot be asked.
	statsMu   sync.Mutex
	lastStats HubStats
}

func openRemoteShard(cfg RemoteShardConfig) (*remoteShard, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	rs := &remoteShard{addr: cfg.Addr, sinks: make(map[string]func(TenantAlarm))}
	p, err := cluster.Open(cluster.ProxyConfig{
		Addr:           cfg.Addr,
		Token:          cfg.Token,
		Router:         "fleet",
		TLS:            cfg.TLS,
		MaxFrame:       cfg.MaxFrame,
		Window:         cfg.Window,
		DialTimeout:    cfg.DialTimeout,
		ControlTimeout: cfg.ControlTimeout,
		KeepAlive:      cfg.KeepAlive,
		MaxAttempts:    cfg.MaxAttempts,
		BackoffMin:     cfg.BackoffMin,
		BackoffMax:     cfg.BackoffMax,
		JitterSeed:     1,
		OnNack: func(n wire.ShardNack) {
			// Worker-side refusals arrive asynchronously: by the time the
			// refusal comes back the submission already succeeded at the
			// router, so it cannot be re-surfaced to that caller. Count and
			// log instead; transport backpressure (full link window) stays
			// synchronous at Submit.
			if rs.nacks.Add(1) == 1 {
				logf("causaliot: shard %s refused event for %q: %s (first refusal — later ones only counted)", cfg.Addr, n.Tenant, n.Code)
			}
		},
		Logf: logf,
	})
	if err != nil {
		return nil, err
	}
	rs.p = p
	return rs, nil
}

// clusterFacadeError maps a cluster-layer error onto the facade's serving
// sentinels, so fleet code handles local and remote failures identically.
func clusterFacadeError(err error) error {
	if err == nil {
		return nil
	}
	var se wire.ShardErr
	if errors.As(err, &se) {
		if s := sentinelForWireCode(se.Code); s != nil {
			return fmt.Errorf("%w: shard %s %q: %s", s, se.Op, se.Tenant, se.Detail)
		}
		return err
	}
	var sn wire.ShardNack
	if errors.As(err, &sn) {
		if s := sentinelForWireCode(sn.Code); s != nil {
			return fmt.Errorf("%w: shard refused %q event", s, sn.Tenant)
		}
		return err
	}
	switch {
	case errors.Is(err, cluster.ErrUnknownTenant):
		return fmt.Errorf("%w: %w", ErrUnknownTenant, err)
	case errors.Is(err, cluster.ErrProxyClosed):
		return fmt.Errorf("%w: %w", ErrHubClosed, err)
	case errors.Is(err, cluster.ErrLinkDown),
		errors.Is(err, cluster.ErrLinkGaveUp),
		errors.Is(err, cluster.ErrControlTimeout):
		return fmt.Errorf("%w: %w", ErrShardUnavailable, err)
	}
	return err
}

// sentinelForWireCode maps a wire refusal code to the facade sentinel a
// local hub would have returned; nil for codes with no sentinel (internal,
// protocol), where the transported detail is the best information.
func sentinelForWireCode(code wire.Code) error {
	switch code {
	case wire.CodeBackpressure:
		return ErrBackpressure
	case wire.CodeQuarantined:
		return ErrQuarantined
	case wire.CodeUnknownDevice:
		return ErrUnknownDevice
	case wire.CodeValueOutOfRange:
		return ErrValueOutOfRange
	case wire.CodeUnknownTenant:
		return ErrUnknownTenant
	case wire.CodeBadAuth:
		return ErrBadAuth
	case wire.CodeClosed:
		return ErrHubClosed
	default:
		return nil
	}
}

// wireSink adapts one tenant's fleet alarm sink to the proxy's wire alarm
// callback.
func (s *remoteShard) wireSink(tenant string, sink func(TenantAlarm)) func(wire.Alarm) {
	s.mu.Lock()
	s.sinks[tenant] = sink
	s.mu.Unlock()
	return func(wa wire.Alarm) {
		s.mu.Lock()
		cur := s.sinks[tenant]
		s.mu.Unlock()
		if cur != nil {
			cur(tenantAlarmFromWire(tenant, wa))
		}
	}
}

// tenantAlarmFromWire rebuilds the facade alarm from its wire form — the
// inverse of wireAlarm.
func tenantAlarmFromWire(tenant string, wa wire.Alarm) TenantAlarm {
	al := &Alarm{Abrupt: wa.Abrupt, Events: make([]AnomalousEvent, len(wa.Events))}
	for i, we := range wa.Events {
		ae := AnomalousEvent{Device: we.Device, State: int(we.State), Score: we.Score}
		if len(we.Context) > 0 {
			ae.Context = make(map[string]int, len(we.Context))
			for _, ce := range we.Context {
				ae.Context[ce.Name] = int(ce.State)
			}
		}
		al.Events[i] = ae
	}
	return TenantAlarm{Tenant: tenant, Alarm: al, Score: wa.Score, Seq: wa.Seq}
}

func (s *remoteShard) register(tenant string, model, state []byte, opts TenantOptions, sink func(TenantAlarm)) error {
	reject := opts.Backpressure == BackpressureReject
	err := s.p.Register(tenant, model, state, uint32(opts.QueueSize), uint8(opts.Backpressure), reject, s.wireSink(tenant, sink))
	if err != nil {
		s.mu.Lock()
		delete(s.sinks, tenant)
		s.mu.Unlock()
		return clusterFacadeError(err)
	}
	return nil
}

func (s *remoteShard) RegisterMonitor(tenant string, mon *Monitor, opts TenantOptions, sink func(TenantAlarm)) error {
	// A monitor cannot cross a process boundary live: serialize it through
	// the checkpoint envelope, ship both halves, and retire the local copy.
	var model, state bytes.Buffer
	if err := mon.Export(ExportOptions{Model: &model, State: &state}); err != nil {
		return err
	}
	if err := s.register(tenant, model.Bytes(), state.Bytes(), opts, sink); err != nil {
		return err
	}
	mon.Close()
	return nil
}

func (s *remoteShard) ImportEnvelope(tenant string, model, state []byte, opts TenantOptions, sink func(TenantAlarm)) error {
	return s.register(tenant, model, state, opts, sink)
}

func (s *remoteShard) ExportEnvelope(tenant string) ([]byte, []byte, error) {
	model, state, err := s.p.Export(tenant)
	if err != nil {
		return nil, nil, clusterFacadeError(err)
	}
	return model, state, nil
}

func (s *remoteShard) Quiesce(tenant string) error {
	return clusterFacadeError(s.p.Quiesce(tenant))
}

func (s *remoteShard) Deregister(tenant string) error {
	err := s.p.Deregister(tenant)
	if err == nil || errors.Is(err, cluster.ErrUnknownTenant) {
		s.mu.Lock()
		delete(s.sinks, tenant)
		s.mu.Unlock()
	}
	return clusterFacadeError(err)
}

func (s *remoteShard) Submit(tenant string, ev Event) error {
	return clusterFacadeError(s.p.Submit(tenant, wire.Event{Seq: ev.Seq, Time: ev.Time, Device: ev.Device, Value: ev.Value}))
}

func (s *remoteShard) Swap(tenant string, sys *System) error {
	var model bytes.Buffer
	if err := sys.Save(&model); err != nil {
		return err
	}
	return clusterFacadeError(s.p.Swap(tenant, model.Bytes()))
}

func (s *remoteShard) Export(tenant string, opts ExportOptions) error {
	if opts.Model == nil && opts.State == nil {
		return errors.New("causaliot: export with no destination")
	}
	model, state, err := s.ExportEnvelope(tenant)
	if err != nil {
		return err
	}
	if opts.Model != nil {
		if _, err := opts.Model.Write(model); err != nil {
			return err
		}
	}
	if opts.State != nil {
		if _, err := opts.State.Write(state); err != nil {
			return err
		}
	}
	return nil
}

func (s *remoteShard) Flush(tenant string) error {
	return clusterFacadeError(s.p.Flush(tenant))
}

// workerHubStats fetches and parses the worker's embedded hub stats.
func (s *remoteShard) workerHubStats() (HubStats, error) {
	doc, err := s.p.StatsDoc()
	if err != nil {
		return HubStats{}, clusterFacadeError(err)
	}
	var ws struct {
		Backend json.RawMessage `json:"backend"`
	}
	if err := json.Unmarshal(doc, &ws); err != nil {
		return HubStats{}, err
	}
	var hs HubStats
	if len(ws.Backend) > 0 {
		if err := json.Unmarshal(ws.Backend, &hs); err != nil {
			return HubStats{}, err
		}
	}
	s.statsMu.Lock()
	s.lastStats = hs
	s.statsMu.Unlock()
	return hs, nil
}

func (s *remoteShard) TenantStats(tenant string) (TenantStats, error) {
	hs, err := s.workerHubStats()
	if err != nil {
		return TenantStats{}, err
	}
	for _, ts := range hs.Tenants {
		if ts.Tenant == tenant {
			return ts, nil
		}
	}
	return TenantStats{}, fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
}

// Stats reports the remote hub's serving stats. While the link is down (or
// after Close) the worker keeps serving but cannot be asked; the last
// successfully fetched snapshot is served instead of an error, so
// fleet-wide aggregation — including the post-shutdown report — keeps
// working.
func (s *remoteShard) Stats() HubStats {
	hs, err := s.workerHubStats()
	if err != nil {
		s.statsMu.Lock()
		hs = s.lastStats
		s.statsMu.Unlock()
	}
	return hs
}

// LifecycleStats is empty for a remote shard: lifecycle counters live in
// the worker process and are not shipped over the stats document.
func (s *remoteShard) LifecycleStats() map[string]LifecycleStats { return nil }

func (s *remoteShard) Health() ShardHealth {
	ps := s.p.Stats()
	return ShardHealth{
		Remote:           true,
		Addr:             s.addr,
		Link:             ps.State.String(),
		Reconnects:       ps.Reconnects,
		Resumes:          ps.Resumes,
		Retransmits:      ps.Retransmits,
		PendingEvents:    ps.Pending,
		EnvelopeBytesIn:  ps.EnvelopeBytesIn,
		EnvelopeBytesOut: ps.EnvelopeBytesOut,
	}
}

// Close detaches the router from the worker; the worker process and its
// tenants keep serving (its own shutdown drains them). A bounded drain is
// requested best-effort so queued events land before the link drops.
func (s *remoteShard) Close() error { return s.CloseWithin(0) }

func (s *remoteShard) CloseWithin(d time.Duration) error {
	if d <= 0 {
		d = 30 * time.Second
	}
	_ = s.p.Drain(d) // best-effort: the worker survives us either way
	// Refresh the cached stats snapshot post-drain so a report read after
	// Close reflects the fully drained counters.
	_, _ = s.workerHubStats()
	return s.p.Close()
}

// AddRemoteShard attaches a shard worker process to the fleet and
// rebalances onto it: the worker becomes a placement target like any local
// shard, serving the tenants the ring assigns it, reached over the cluster
// wire protocol with exactly-once event admission and automatic
// reconnect-with-resume. Returns the new shard's id.
func (f *Fleet) AddRemoteShard(cfg RemoteShardConfig) (int, error) {
	if cfg.Addr == "" {
		return 0, errors.New("causaliot: remote shard with empty address")
	}
	rs, err := openRemoteShard(cfg)
	if err != nil {
		return 0, clusterFacadeError(err)
	}
	id, err := f.AddShardFor(rs)
	if err != nil {
		rs.p.Close()
		return 0, err
	}
	return id, nil
}

// ClusterConfig assembles a router over remote shard workers.
type ClusterConfig struct {
	// Workers are the shard worker processes to attach. At least one.
	Workers []RemoteShardConfig
	// Replicas is the consistent-hash ring's virtual-node count per shard.
	Replicas int
	// Hub supplies router-side defaults: AlarmBuffer sizes the fan-in
	// channel, QueueSize and Backpressure the migration gap buffers.
	Hub HubConfig
}

// NewCluster builds a fleet whose shards are all remote worker processes: a
// router. The router holds no monitors — registration serializes each
// tenant's model and state over the wire — so it stays lightweight while
// workers carry the serving load. The returned Fleet has the full Host and
// migration surface: Migrate moves tenants between worker processes through
// the same quiesce → envelope → restore → gap-replay handoff in-process
// migration uses.
func NewCluster(cfg ClusterConfig) (*Fleet, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("causaliot: cluster with no workers")
	}
	f := newFleet(FleetConfig{Replicas: cfg.Replicas, Hub: cfg.Hub}, 0)
	for _, w := range cfg.Workers {
		if _, err := f.AddRemoteShard(w); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("causaliot: attaching shard %s: %w", w.Addr, err)
		}
	}
	return f, nil
}
