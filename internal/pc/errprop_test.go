package pc

import (
	"errors"
	"sync"
	"testing"

	"github.com/causaliot/causaliot/internal/stats"
)

var errTesterBoom = errors.New("tester boom")

// failingTester delegates to G² until the Nth call (1-based), then fails
// every call — the stub the error-propagation regression tests use to
// prove a CI-tester failure surfaces instead of silently mis-pruning.
type failingTester struct {
	mu     sync.Mutex
	calls  int
	failAt int
}

func (f *failingTester) Test(x, y stats.Sample, zs []stats.Sample) (stats.CIResult, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n >= f.failAt {
		return stats.CIResult{}, errTesterBoom
	}
	return stats.GSquareTester{}.Test(x, y, zs)
}

func (f *failingTester) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func TestDiscoverParentsPropagatesTesterError(t *testing.T) {
	s := chainSeries(t, 1500, 0.05, 7)
	for _, failAt := range []int{1, 3, 10} {
		miner := NewMiner(Config{Tester: &failingTester{failAt: failAt}})
		ps, removals, _, err := miner.DiscoverParents(s, 2, 2)
		if !errors.Is(err, errTesterBoom) {
			t.Fatalf("failAt=%d: err = %v, want errTesterBoom", failAt, err)
		}
		if ps != nil || removals != nil {
			t.Errorf("failAt=%d: errored discovery returned results: parents=%v removals=%v", failAt, ps, removals)
		}
	}
}

func TestMinePropagatesTesterError(t *testing.T) {
	s := chainSeries(t, 1500, 0.05, 13)
	for _, workers := range []int{1, 8} {
		// failAt=1 makes every device's discovery fail, exercising the
		// result writes of goroutines that lose the firstErr race.
		for _, failAt := range []int{1, 5} {
			miner := NewMiner(Config{Workers: workers, Tester: &failingTester{failAt: failAt}})
			g, removals, _, err := miner.Mine(s, 2, 0.01)
			if !errors.Is(err, errTesterBoom) {
				t.Fatalf("workers=%d failAt=%d: err = %v, want errTesterBoom", workers, failAt, err)
			}
			if g != nil || removals != nil {
				t.Errorf("workers=%d failAt=%d: errored Mine returned a graph", workers, failAt)
			}
		}
	}
}

func TestClassicPCPropagatesTesterError(t *testing.T) {
	n := 500
	mk := func(period int) stats.Sample {
		vals := make([]int, n)
		for i := range vals {
			vals[i] = (i / period) % 2
		}
		return stats.Sample{Values: vals, Arity: 2}
	}
	samples := []stats.Sample{mk(2), mk(3), mk(5)}
	_, _, err := ClassicPC([]string{"a", "b", "c"}, samples, Config{Tester: &failingTester{failAt: 2}})
	if !errors.Is(err, errTesterBoom) {
		t.Fatalf("err = %v, want errTesterBoom", err)
	}
}

// TestMarginalMemoSkipsRankingTests proves the MaxParents ranking pass
// reuses the marginal (l=0) results memoized during pruning: capping the
// parent count must not cost a single extra tester call.
func TestMarginalMemoSkipsRankingTests(t *testing.T) {
	s := chainSeries(t, 3000, 0.05, 19)
	uncapped := &failingTester{failAt: 1 << 30}
	if _, _, _, err := NewMiner(Config{Tester: uncapped}).DiscoverParents(s, 2, 2); err != nil {
		t.Fatal(err)
	}
	capped := &failingTester{failAt: 1 << 30}
	ps, _, st, err := NewMiner(Config{MaxParents: 1, Tester: capped}).DiscoverParents(s, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) > 1 {
		t.Fatalf("cap not applied: %d parents", len(ps))
	}
	if capped.callCount() != uncapped.callCount() {
		t.Errorf("ranking re-ran marginal tests: %d calls with cap, %d without", capped.callCount(), uncapped.callCount())
	}
	if st.Tests != capped.callCount() {
		t.Errorf("Stats.Tests = %d, tester saw %d calls", st.Tests, capped.callCount())
	}
}
